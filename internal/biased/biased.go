// Package biased implements lock reservation (biased locking) on the
// paper's 24-bit lock field — the historically-next design after thin
// locks, which eliminates even the one compare-and-swap the thin-lock
// fast path pays on every initial acquisition.
//
// An unlocked object's first locker does not take the lock so much as
// *reserve* the object: it installs a biased word (core.BiasedWord)
// carrying its thread index and a small class epoch, and records the
// reservation in one of its per-thread bias slots
// (threading.BiasSlot). From then on the owner's lock and unlock are a
// slot lookup, one plain atomic store of the new recursion depth into
// the slot, and one validating load of the header — no read-modify-
// write atomics, and the owner never writes the shared lock word at
// all. The depth store followed by the header load is the owner's half
// of a Dekker-style handshake with revokers.
//
// Revocation. When another thread needs a reserved object it CASes the
// biased word to a revocation sentinel (owner index 0), which makes it
// the only writer of the word. It then finds the reserving thread
// through the registry (threading.Registry.Lookup), reads the depth the
// owner last published in its bias slot — the revocation's
// linearization point — and rewrites the header to a conventional
// word: thin owned-by-reserver at that depth, or unlocked when the
// depth was 0. Finally it unparks the reserver (threading.Parker) in
// case it is stalled mid-handshake. Because the revoker's CAS and
// depth read bracket the owner's depth store and header load under Go's
// sequentially consistent atomics, one side always observes the other:
// either the revoker's depth read includes the owner's in-flight
// operation, or the owner's validating load sees the sentinel and
// reconciles against whatever word the revoker published. A revoked
// object can never be re-reserved (a sticky flags bit records the
// revocation), so the fall-back is exactly the paper's protocol: thin
// words with a CAS acquire, inflating to an internal/monitor fat lock
// on contention, count overflow, or Wait.
//
// Epochs. Each biased word carries a class epoch. When a class of
// objects churns owners — revocation after revocation — the class's
// epoch is bumped (bulk rebias): reservations stamped with the old
// epoch become *stale*, and a contender finding a stale, unheld
// reservation takes the bias over for itself instead of revoking to
// thin, at the cost of one CAS. Past a second threshold the class is
// declared unbiasable (bulk revoke) and new objects of the class go
// straight to thin words.
package biased

import (
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/core"
	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState is returned when a thread unlocks, waits on or
// notifies an object whose monitor it does not own.
var ErrIllegalMonitorState = monitor.ErrIllegalMonitorState

// FlagBiasDead is the sticky object-flags bit a revoker sets before
// publishing the walked word: a revoked object is never re-reserved.
// Without it a spinning contender could chase an object that re-biases
// between its header loads. Bit 0 is core.FlagFLC.
const FlagBiasDead uint32 = 1 << 1

// maxBiasDepth is the deepest recursion a reservation can carry: a
// revocation at depth d seeds a thin count of d−1, which must fit the
// 7-bit count space below core.BiasBit. The owner self-revokes directly
// to a fat lock on the acquisition past the cap.
const maxBiasDepth = core.BiasMaxThinCount + 1

// thinNestedLimit is the XOR-check bound for this implementation's thin
// words (count capped at core.BiasMaxThinCount so core.BiasBit stays
// unambiguous): after XORing the loaded word with the owner's
// pre-shifted index, any value below it means "thin, owned by this
// thread, count < 127".
const thinNestedLimit = uint32(core.BiasMaxThinCount) << core.CountShift

// Default heuristic thresholds (see Options).
const (
	DefaultEpochBits       = 2
	DefaultRebiasThreshold = 4
	DefaultRevokeThreshold = 16
)

// Options configures a biased Locker.
type Options struct {
	// DisableBias turns reservation off entirely: the implementation
	// degenerates to a plain thin lock (with the narrower 7-bit count).
	// Useful as an ablation baseline.
	DisableBias bool
	// DisableRebias turns off the epoch machinery: reservations are
	// never transferred and class epochs never bump, so every
	// contended reservation pays a full revocation.
	DisableRebias bool
	// EpochBits is the width of the per-class bias epoch stored in the
	// biased word (1..core.MaxBiasEpochBits; 0 means DefaultEpochBits).
	EpochBits int
	// RebiasThreshold is the number of revocations of a class after
	// which its epoch is bumped, invalidating (and making
	// transferable) all outstanding reservations of that class
	// (0 means DefaultRebiasThreshold).
	RebiasThreshold int
	// RevokeThreshold is the number of revocations of a class after
	// which the class becomes unbiasable (0 means
	// DefaultRevokeThreshold).
	RevokeThreshold int
	// CPU is the simulated machine for the thin-lock fall-back CAS
	// (the biased fast path needs no CAS on any machine). The default
	// is PowerPCUP.
	CPU arch.CPU
	// TestMutations plants deliberate protocol bugs so the
	// differential checker can prove it detects them. Test-only.
	TestMutations Mutations
}

// Stats is a snapshot of a biased Locker's internal counters. Biased
// fast-path acquisitions are deliberately not counted here — an
// implementation counter would put an atomic add on the path whose
// whole point is having none; enable internal/telemetry
// (CtrBiasedAcquires) to count them.
type Stats struct {
	// BiasInstalls counts reservations installed on unlocked objects.
	BiasInstalls uint64
	// BiasTransfers counts stale reservations taken over by a new
	// thread without a full revocation.
	BiasTransfers uint64
	// RevocationsContention counts reservations revoked by a
	// contending thread.
	RevocationsContention uint64
	// RevocationsWait counts owner self-revocations forced by Wait.
	RevocationsWait uint64
	// RevocationsOverflow counts owner self-revocations forced by
	// recursion past the biased depth cap.
	RevocationsOverflow uint64
	// BulkRebiases counts class-epoch bumps.
	BulkRebiases uint64
	// BulkRevokes counts classes declared unbiasable.
	BulkRevokes uint64
	// InflationsContention counts inflations of the thin fall-back
	// caused by contention.
	InflationsContention uint64
	// InflationsOverflow counts inflations by count overflow (biased
	// self-revocation past the cap, or the thin fall-back's 129th
	// nested lock).
	InflationsOverflow uint64
	// InflationsWait counts inflations caused by a wait operation.
	InflationsWait uint64
	// SpinAcquisitions counts slow-path acquisitions that spun for a
	// thin lock held by another thread.
	SpinAcquisitions uint64
	// SpinRounds counts individual back-off pauses across all spins.
	SpinRounds uint64
	// FatLocks is the number of monitors ever allocated.
	FatLocks int
}

// Revocations returns the total number of revocations for any cause.
func (s Stats) Revocations() uint64 {
	return s.RevocationsContention + s.RevocationsWait + s.RevocationsOverflow
}

// Inflations returns the total number of inflations for any cause.
// Every allocated monitor comes from exactly one inflation, so this
// always equals FatLocks after quiescence.
func (s Stats) Inflations() uint64 {
	return s.InflationsContention + s.InflationsOverflow + s.InflationsWait
}

// classBias is the per-class bulk-rebias/bulk-revoke state. It is only
// touched on slow paths (install, revocation); the biased fast path
// never checks epochs — a reservation is valid for its owner no matter
// how stale, staleness only changes what a *contender* does with it.
type classBias struct {
	epoch       atomic.Uint32
	revocations atomic.Uint32
	unbiasable  atomic.Bool
}

// Locker implements lockapi.Locker with lock reservation over the
// standard thin/fat fall-back.
type Locker struct {
	table *monitor.Table
	cpu   arch.CPU
	mut   Mutations

	disableBias   bool
	disableRebias bool
	epochBits     int
	rebiasEvery   uint32
	revokeAt      uint32

	classes sync.Map // class string → *classBias

	biasInstalls   atomic.Uint64
	biasTransfers  atomic.Uint64
	revContention  atomic.Uint64
	revWait        atomic.Uint64
	revOverflow    atomic.Uint64
	bulkRebiases   atomic.Uint64
	bulkRevokes    atomic.Uint64
	inflContention atomic.Uint64
	inflOverflow   atomic.Uint64
	inflWait       atomic.Uint64
	spinAcq        atomic.Uint64
	spinRounds     atomic.Uint64
}

// New returns a biased Locker with the given options.
func New(opts Options) *Locker {
	bits := opts.EpochBits
	if bits <= 0 || bits > core.MaxBiasEpochBits {
		bits = DefaultEpochBits
	}
	rebias := opts.RebiasThreshold
	if rebias <= 0 {
		rebias = DefaultRebiasThreshold
	}
	revoke := opts.RevokeThreshold
	if revoke <= 0 {
		revoke = DefaultRevokeThreshold
	}
	return &Locker{
		table:         monitor.NewTable(),
		cpu:           opts.CPU,
		mut:           opts.TestMutations,
		disableBias:   opts.DisableBias,
		disableRebias: opts.DisableRebias,
		epochBits:     bits,
		rebiasEvery:   uint32(rebias),
		revokeAt:      uint32(revoke),
	}
}

// NewDefault returns the standard configuration.
func NewDefault() *Locker { return New(Options{}) }

// Name implements lockapi.Locker.
func (l *Locker) Name() string {
	switch {
	case l.disableBias:
		return "Biased-off"
	case l.disableRebias:
		return "Biased-norebias"
	default:
		return "Biased"
	}
}

// Stats returns a snapshot of the instance's counters.
func (l *Locker) Stats() Stats {
	return Stats{
		BiasInstalls:          l.biasInstalls.Load(),
		BiasTransfers:         l.biasTransfers.Load(),
		RevocationsContention: l.revContention.Load(),
		RevocationsWait:       l.revWait.Load(),
		RevocationsOverflow:   l.revOverflow.Load(),
		BulkRebiases:          l.bulkRebiases.Load(),
		BulkRevokes:           l.bulkRevokes.Load(),
		InflationsContention:  l.inflContention.Load(),
		InflationsOverflow:    l.inflOverflow.Load(),
		InflationsWait:        l.inflWait.Load(),
		SpinAcquisitions:      l.spinAcq.Load(),
		SpinRounds:            l.spinRounds.Load(),
		FatLocks:              l.table.Len(),
	}
}

// classFor returns (creating on first use) the per-class bias state.
func (l *Locker) classFor(class string) *classBias {
	if c, ok := l.classes.Load(class); ok {
		return c.(*classBias)
	}
	c, _ := l.classes.LoadOrStore(class, new(classBias))
	return c.(*classBias)
}

// Lock acquires o's monitor for t. The biased fast path: find the
// reservation slot, publish the new depth with one plain store, and
// validate that the reservation still stands. No compare-and-swap, no
// fence beyond the store itself, and no write to shared memory at all.
func (l *Locker) Lock(t *threading.Thread, o *object.Object) {
	l.lockBody(t, o)
	if d := lockdep.Active(); d != nil {
		d.Acquired(t, o)
	}
}

func (l *Locker) lockBody(t *threading.Thread, o *object.Object) {
	if s := t.BiasSlotFor(o.ID()); s != nil {
		if d := s.Depth(); d < maxBiasDepth {
			s.SetDepth(d + 1) // Dekker publish
			if atomic.LoadUint32(o.HeaderAddr()) == s.Word() || l.mut.SkipOwnerValidation {
				if tel := telemetry.Active(); tel != nil {
					tel.Inc(t, telemetry.CtrBiasedAcquires)
				}
				return
			}
			if l.reconcileLock(t, o, s, d+1) {
				return
			}
			// The reservation was revoked at depth 0 and not granted to
			// us; acquire conventionally.
		}
	}
	l.lockSlow(t, o)
}

// Unlock releases one level of o's monitor. The biased fast path
// mirrors Lock: one plain store of the decremented depth, one
// validating load.
func (l *Locker) Unlock(t *threading.Thread, o *object.Object) error {
	err := l.unlockBody(t, o)
	if err == nil {
		if d := lockdep.Active(); d != nil {
			d.Released(t, o)
		}
	}
	return err
}

func (l *Locker) unlockBody(t *threading.Thread, o *object.Object) error {
	if s := t.BiasSlotFor(o.ID()); s != nil {
		if d := s.Depth(); d > 0 {
			s.SetDepth(d - 1) // Dekker publish
			if atomic.LoadUint32(o.HeaderAddr()) == s.Word() || l.mut.SkipOwnerValidation {
				return nil
			}
			l.reconcileUnlock(t, o, s, d-1)
			return nil
		}
		if atomic.LoadUint32(o.HeaderAddr()) == s.Word() {
			// Reserved by us but not held: reservation alone does not
			// confer ownership.
			return ErrIllegalMonitorState
		}
		// Stale slot from an old bias generation (the reservation was
		// transferred or revoked while unheld).
		s.Release()
	}
	return l.unlockSlow(t, o)
}

// Wait implements lockapi.Locker. Waiting requires queues: a held
// reservation is self-revoked straight to a fat lock; a thin-held
// object inflates as in the paper.
func (l *Locker) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	if ld := lockdep.Active(); ld != nil {
		ld.CondWaitBegin(t, o)
		ok, err := l.waitBody(t, o, d)
		ld.CondWaitEnd(t, o)
		return ok, err
	}
	return l.waitBody(t, o, d)
}

func (l *Locker) waitBody(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	if s := t.BiasSlotFor(o.ID()); s != nil && s.Depth() > 0 {
		if m := l.waitRevoke(t, o, s); m != nil {
			return m.Wait(t, d)
		}
		// A concurrent revoker walked the reservation to a
		// conventional word first; fall through to the header.
	}
	for {
		w := o.Header()
		switch {
		case core.IsInflated(w):
			return l.table.Get(core.FatIndex(w)).Wait(t, d)
		case core.IsBiasRevoking(w):
			l.awaitRevocation(t, o)
		case core.IsBiased(w):
			// Reserved (by us unheld, or by another thread): not owned.
			return false, ErrIllegalMonitorState
		case w&core.TIDMask == t.Shifted():
			l.inflWait.Add(1)
			telemetry.Inc(t, telemetry.CtrInflationsWait)
			lockprof.Inflation(t, o, lockprof.CauseWait)
			m := l.inflate(t, o, core.ThinCount(w)+1)
			return m.Wait(t, d)
		default:
			return false, ErrIllegalMonitorState
		}
	}
}

// Notify implements lockapi.Locker. A reserved or thin-locked object
// can have no waiters (waiting revokes/inflates first), so notify while
// owning one is a no-op.
func (l *Locker) Notify(t *threading.Thread, o *object.Object) error {
	if l.notifyFast(t, o) {
		return nil
	}
	return l.notifySlow(t, o, false)
}

// NotifyAll implements lockapi.Locker.
func (l *Locker) NotifyAll(t *threading.Thread, o *object.Object) error {
	if l.notifyFast(t, o) {
		return nil
	}
	return l.notifySlow(t, o, true)
}

// notifyFast reports whether t holds o through a live reservation — in
// which case o can have no waiters and the notify is a no-op.
func (l *Locker) notifyFast(t *threading.Thread, o *object.Object) bool {
	s := t.BiasSlotFor(o.ID())
	return s != nil && s.Depth() > 0 && atomic.LoadUint32(o.HeaderAddr()) == s.Word()
}

// notifySlow resolves the header conventionally.
func (l *Locker) notifySlow(t *threading.Thread, o *object.Object, all bool) error {
	for {
		w := o.Header()
		switch {
		case core.IsInflated(w):
			m := l.table.Get(core.FatIndex(w))
			if all {
				return m.NotifyAll(t)
			}
			return m.Notify(t)
		case core.IsBiasRevoking(w):
			// Our own held reservation may be mid-revocation; once the
			// revoker publishes the walked word we can classify it.
			l.awaitRevocation(t, o)
		case core.IsBiased(w):
			return ErrIllegalMonitorState
		case w&core.TIDMask == t.Shifted():
			return nil
		default:
			return ErrIllegalMonitorState
		}
	}
}

// Inflated reports whether o's lock is currently in the fat state.
func (l *Locker) Inflated(o *object.Object) bool { return core.IsInflated(o.Header()) }

// Biased reports whether o currently carries a live reservation.
func (l *Locker) Biased(o *object.Object) bool {
	w := o.Header()
	return core.IsBiased(w) && !core.IsBiasRevoking(w)
}

// HolderIndex returns the thread index currently holding o's lock, or 0
// if unlocked. A reservation alone is not a held lock: for a biased
// word the depth lives in the reserver's slot, which cannot be read
// reliably from outside a revocation, so biased words report 0; use
// Biased to distinguish reserved-unheld from unlocked.
func (l *Locker) HolderIndex(o *object.Object) uint16 {
	w := o.Header()
	if core.IsBiased(w) {
		return 0
	}
	if !core.IsInflated(w) {
		return core.ThinOwner(w)
	}
	owner := l.table.Get(core.FatIndex(w)).Owner()
	if owner == nil {
		return 0
	}
	return owner.Index()
}

// Monitor returns the fat lock of an inflated object, or nil. Intended
// for tests and diagnostics.
func (l *Locker) Monitor(o *object.Object) *monitor.Monitor {
	w := o.Header()
	if !core.IsInflated(w) {
		return nil
	}
	return l.table.Get(core.FatIndex(w))
}
