package biased

import (
	"math/rand"
	"testing"

	"thinlock/internal/core"
)

// TestBiasedWordRoundTrip exhaustively round-trips the biased encoding
// over every owner index boundary, every epoch width, every epoch value
// the width can hold, and misc patterns: the decode functions must
// recover exactly what was encoded, and the shape predicates must
// classify the word as biased and nothing else.
func TestBiasedWordRoundTrip(t *testing.T) {
	t.Parallel()
	owners := []uint16{1, 2, 3, 127, 128, 255, 256, 32766, 32767}
	miscs := []uint32{0, 1, 0x55, 0xAA, 0xFF}
	for bits := 1; bits <= core.MaxBiasEpochBits; bits++ {
		for _, owner := range owners {
			for epoch := uint32(0); epoch < 1<<bits; epoch++ {
				for _, misc := range miscs {
					w := core.BiasedWord(owner, epoch, bits, misc)
					if !core.IsBiased(w) {
						t.Fatalf("bits=%d owner=%d epoch=%d misc=%#x: IsBiased = false", bits, owner, epoch, misc)
					}
					if core.IsBiasRevoking(w) {
						t.Fatalf("owner=%d: live reservation classified as revocation sentinel", owner)
					}
					if core.IsInflated(w) {
						t.Fatalf("owner=%d: biased word classified as inflated", owner)
					}
					if got := core.BiasOwner(w); got != owner {
						t.Fatalf("BiasOwner = %d, want %d", got, owner)
					}
					if got := core.BiasEpoch(w, bits); got != epoch {
						t.Fatalf("BiasEpoch(bits=%d) = %d, want %d", bits, got, epoch)
					}
					if got := w & core.MiscMask; got != misc {
						t.Fatalf("misc = %#x, want %#x", got, misc)
					}
				}
			}
		}
	}
}

// TestBiasRevokingSentinel pins the sentinel encoding: owner index 0,
// still shaped as a biased word, misc preserved — and no word carrying a
// real owner may classify as the sentinel.
func TestBiasRevokingSentinel(t *testing.T) {
	t.Parallel()
	for _, misc := range []uint32{0, 0x7F, 0xFF} {
		w := core.BiasRevokingWord(misc)
		if !core.IsBiasRevoking(w) || !core.IsBiased(w) {
			t.Fatalf("misc=%#x: sentinel %#08x not classified as revoking biased word", misc, w)
		}
		if core.BiasOwner(w) != 0 {
			t.Fatalf("sentinel carries owner %d, want 0", core.BiasOwner(w))
		}
		if w&core.MiscMask != misc {
			t.Fatalf("sentinel misc = %#x, want %#x", w&core.MiscMask, misc)
		}
	}
}

// TestShapeStatesDisjoint proves the four lock-word shapes — unlocked,
// thin (within the biased implementation's 7-bit count discipline),
// biased, inflated — are mutually exclusive under the classification
// predicates, for a sweep of words of each shape.
func TestShapeStatesDisjoint(t *testing.T) {
	t.Parallel()
	type shape struct {
		name string
		word uint32
	}
	var words []shape
	for _, misc := range []uint32{0, 0xFF} {
		words = append(words, shape{"unlocked", misc})
		for _, owner := range []uint16{1, 32767} {
			for _, count := range []uint32{0, 1, core.BiasMaxThinCount - 1} {
				words = append(words, shape{"thin", core.ThinWord(owner, count, misc)})
			}
			words = append(words, shape{"biased", core.BiasedWord(owner, 3, core.MaxBiasEpochBits, misc)})
		}
		words = append(words, shape{"revoking", core.BiasRevokingWord(misc)})
		words = append(words, shape{"inflated", core.InflatedWord(7, misc)})
	}
	for _, s := range words {
		classes := 0
		if core.IsInflated(s.word) {
			classes++
		}
		if core.IsBiased(s.word) {
			classes++
		}
		thin := !core.IsInflated(s.word) && !core.IsBiased(s.word) && s.word&core.TIDMask != 0
		if thin {
			classes++
		}
		unlocked := !core.IsInflated(s.word) && !core.IsBiased(s.word) && s.word&core.TIDMask == 0
		if unlocked {
			classes++
		}
		if classes != 1 {
			t.Errorf("%s word %#08x matches %d shape classes, want exactly 1", s.name, s.word, classes)
		}
		switch s.name {
		case "unlocked":
			if !unlocked {
				t.Errorf("unlocked word %#08x misclassified", s.word)
			}
		case "thin":
			if !thin {
				t.Errorf("thin word %#08x misclassified", s.word)
			}
		case "biased", "revoking":
			if !core.IsBiased(s.word) {
				t.Errorf("%s word %#08x not IsBiased", s.name, s.word)
			}
		case "inflated":
			if !core.IsInflated(s.word) {
				t.Errorf("inflated word %#08x not IsInflated", s.word)
			}
		}
	}
}

// TestCorruptedWordsDetected is the encoding's seeded-mutation kill
// suite: take a valid biased word and corrupt it the three ways a
// protocol bug would — flip the bias bit, stamp a stale epoch, swap in
// the wrong owner index — and prove each corruption is observable
// through the decode functions (no corruption aliases back to the
// original word's meaning).
func TestCorruptedWordsDetected(t *testing.T) {
	t.Parallel()
	const bits = DefaultEpochBits
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		owner := uint16(rng.Intn(32767) + 1)
		epoch := rng.Uint32() & (1<<bits - 1)
		misc := rng.Uint32() & core.MiscMask
		w := core.BiasedWord(owner, epoch, bits, misc)

		// Flip the bias bit: the word must stop classifying as biased —
		// otherwise a revoker could walk a word that was never a
		// reservation.
		if flipped := w ^ core.BiasBit; core.IsBiased(flipped) {
			t.Fatalf("word %#08x with bias bit cleared still IsBiased", flipped)
		}

		// Stale epoch: every other epoch value must decode as different,
		// or bulk rebias could never distinguish stale reservations.
		for d := uint32(1); d < 1<<bits; d++ {
			stale := core.BiasedWord(owner, epoch+d, bits, misc)
			if core.BiasEpoch(stale, bits) == core.BiasEpoch(w, bits) {
				t.Fatalf("epoch %d and %d alias under %d bits", epoch, epoch+d, bits)
			}
			if !core.IsBiased(stale) || core.BiasOwner(stale) != owner {
				t.Fatalf("restamping the epoch disturbed owner/shape: %#08x", stale)
			}
		}

		// Wrong owner index: the reservation must identify its one owner
		// exactly, or revocation would walk the wrong thread's depth.
		wrong := uint16(rng.Intn(32767) + 1)
		if wrong == owner {
			wrong = owner%32767 + 1
		}
		forged := core.BiasedWord(wrong, epoch, bits, misc)
		if core.BiasOwner(forged) == owner {
			t.Fatalf("owner %d and %d alias in the biased word", owner, wrong)
		}
		if forged == w {
			t.Fatalf("distinct owners encoded to identical words %#08x", w)
		}
	}
}

// FuzzBiasedWordRoundTrip lets the fuzzer hunt for encode/decode
// disagreements across the full input space, including epoch values
// wider than the field (which must truncate consistently on both
// sides).
func FuzzBiasedWordRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint32(0), 2, uint32(0))
	f.Add(uint16(32767), uint32(3), 7, uint32(0xFF))
	f.Add(uint16(128), uint32(9999), 1, uint32(0x5A))
	f.Fuzz(func(t *testing.T, owner uint16, epoch uint32, bits int, misc uint32) {
		if owner == 0 || owner > 32767 || bits < 1 || bits > core.MaxBiasEpochBits {
			t.Skip()
		}
		w := core.BiasedWord(owner, epoch, bits, misc)
		if !core.IsBiased(w) || core.IsBiasRevoking(w) || core.IsInflated(w) {
			t.Fatalf("biased(%d,%d,%d,%#x) = %#08x misclassified", owner, epoch, bits, misc, w)
		}
		if got := core.BiasOwner(w); got != owner {
			t.Fatalf("BiasOwner = %d, want %d", got, owner)
		}
		if got, want := core.BiasEpoch(w, bits), epoch&(1<<bits-1); got != want {
			t.Fatalf("BiasEpoch = %d, want %d", got, want)
		}
		if got, want := w&core.MiscMask, misc&core.MiscMask; got != want {
			t.Fatalf("misc = %#x, want %#x", got, want)
		}
	})
}
