package conformance_test

import (
	"testing"

	"thinlock/internal/check"
	"thinlock/internal/lockapi/conformance"
)

// TestAllImplementations runs the conformance suite against every
// implementation in the checker's registry (thin locks and their
// variants, both historical baselines, and the reference oracle).
func TestAllImplementations(t *testing.T) {
	impls := check.Implementations()
	for _, name := range check.ImplementationNames() {
		name := name
		mk := impls[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			conformance.Run(t, mk)
		})
	}
}
