package conformance

import (
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

// The deflation-race cases below state monitor semantics every
// implementation must exhibit, but that only *deflating* implementations
// (EnableDeflation / RecycleMonitors) can get wrong in interesting ways:
// a monitor deflated back to a thin word races a concurrent enter, a
// waiter must pin its monitor against deflation, a recycled index must
// not leak one object's monitor to another, and a recursively held
// monitor must never deflate early. Non-deflating implementations pass
// them trivially — which is exactly why they are stated here, once, for
// all implementations.

// testDeflateEnterRace: one thread continuously drives an object through
// the inflate → deflate cycle (a timed wait inflates; every final unlock
// is a deflation candidate) while two other threads hammer plain
// lock/unlock on the same object. Whatever state the header is caught
// in — thin, fat, mid-deflation, re-inflated — mutual exclusion must
// hold and every unlock must succeed.
func testDeflateEnterRace(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	o := f.heap.New("conf")

	const (
		churnRounds = 60
		enterRounds = 300
		enterers    = 2
	)
	counter := 0 // guarded by o; lost updates mean broken exclusion
	var inside atomic.Int32
	enter := func() {
		if inside.Add(1) != 1 {
			t.Error("two threads inside the critical section")
		}
	}
	exit := func() { inside.Add(-1) }

	churnDone, err := f.reg.Go("churner", func(w *threading.Thread) {
		for r := 0; r < churnRounds; r++ {
			f.l.Lock(w, o)
			// The wait releases the monitor (letting the enterers in)
			// and re-acquires on timeout; only then are we "inside".
			if _, err := f.l.Wait(w, o, 200*time.Microsecond); err != nil {
				t.Errorf("churner wait: %v", err)
			}
			enter()
			counter++
			exit()
			if err := f.l.Unlock(w, o); err != nil {
				t.Errorf("churner unlock: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	dones := []<-chan struct{}{churnDone}
	for i := 0; i < enterers; i++ {
		done, err := f.reg.Go("enterer", func(w *threading.Thread) {
			for r := 0; r < enterRounds; r++ {
				f.l.Lock(w, o)
				enter()
				counter++
				exit()
				if err := f.l.Unlock(w, o); err != nil {
					t.Errorf("enterer unlock: %v", err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-time.After(testutil.DefaultWaitTimeout):
			t.Fatal("deflate-enter race participant never finished")
		}
	}
	if want := churnRounds + enterers*enterRounds; counter != want {
		t.Fatalf("counter = %d, want %d (lost updates across deflation)", counter, want)
	}
}

// testDeflateVsWait: a waiter parked in Wait pins its monitor. Another
// thread then locks and fully releases the object many times — each
// release is a deflation candidate, but the non-empty wait set must veto
// it, or the waiter's monitor (wait set included) is thrown away and the
// final Notify lands on a fresh lock with nobody waiting.
func testDeflateVsWait(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	waiting := make(chan struct{})
	notified := make(chan bool, 1)
	done, err := f.reg.Go("waiter", func(w *threading.Thread) {
		f.l.Lock(w, o)
		close(waiting)
		ok, err := f.l.Wait(w, o, 0)
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("waiter unlock: %v", err)
		}
		notified <- ok
	})
	if err != nil {
		t.Fatal(err)
	}
	<-waiting
	// Acquiring here guarantees the waiter is inside Wait; each of the
	// following final unlocks would deflate if the wait set were
	// (wrongly) ignored.
	for i := 0; i < 20; i++ {
		f.l.Lock(main, o)
		if err := f.l.Unlock(main, o); err != nil {
			t.Fatalf("churn unlock %d: %v", i, err)
		}
	}
	f.l.Lock(main, o)
	if err := f.l.Notify(main, o); err != nil {
		t.Fatalf("notify: %v", err)
	}
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	select {
	case <-done:
	case <-time.After(testutil.DefaultWaitTimeout):
		t.Fatal("waiter never woke: deflation discarded a parked waiter")
	}
	if !<-notified {
		t.Error("waiter reported notified = false after Notify")
	}
}

// testReinflateAfterDeflate: two objects alternately inflate and deflate
// while dedicated threads hammer each object, so a stale monitor
// reference (an implementation caching or recycling per-object monitor
// state) has every chance to resolve to the *other* object's current
// monitor. Each object's counter is guarded only by that object; any
// cross-object leak of a monitor loses updates or trips the per-object
// exclusivity tripwire.
func testReinflateAfterDeflate(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a, b := f.heap.New("conf"), f.heap.New("conf")

	const (
		churnRounds = 40
		enterRounds = 200
	)
	counters := [2]int{}
	var inside [2]atomic.Int32
	objs := [2]*object.Object{a, b}

	// The churner inflates a, deflates it (timed wait + full release),
	// then immediately does the same to b: with index recycling b's
	// fresh monitor tends to reuse a's just-freed slot, which is the
	// stale-index hazard under test.
	churnDone, err := f.reg.Go("churner", func(w *threading.Thread) {
		for r := 0; r < churnRounds; r++ {
			for i, co := range objs {
				f.l.Lock(w, co)
				if _, err := f.l.Wait(w, co, 100*time.Microsecond); err != nil {
					t.Errorf("churner wait obj%d: %v", i, err)
				}
				if err := f.l.Unlock(w, co); err != nil {
					t.Errorf("churner unlock obj%d: %v", i, err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	dones := []<-chan struct{}{churnDone}
	for i := range objs {
		i := i
		done, err := f.reg.Go("enterer", func(w *threading.Thread) {
			for r := 0; r < enterRounds; r++ {
				f.l.Lock(w, objs[i])
				if inside[i].Add(1) != 1 {
					t.Errorf("two threads inside object %d's critical section", i)
				}
				counters[i]++
				inside[i].Add(-1)
				if err := f.l.Unlock(w, objs[i]); err != nil {
					t.Errorf("enterer unlock obj%d: %v", i, err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-time.After(testutil.DefaultWaitTimeout):
			t.Fatal("reinflate race participant never finished")
		}
	}
	for i := range counters {
		if counters[i] != enterRounds {
			t.Errorf("object %d counter = %d, want %d (monitor leaked across objects)",
				i, counters[i], enterRounds)
		}
	}
}

// testNoDeflateWhileNested: a monitor held recursively must not deflate
// until the *final* release. The holder inflates at depth 5 (a timed
// wait forces fat state on thin-lock implementations), then unwinds one
// level at a time while a contender tries to get in; the contender must
// only ever acquire after the holder's last unlock has cleared the
// held flag. An implementation that treats any fat unlock as a deflation
// point hands the contender a lock the holder still owns.
func testNoDeflateWhileNested(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	o := f.heap.New("conf")

	const depth = 5
	held := false // guarded by o
	atDepth := make(chan struct{})
	holderDone, err := f.reg.Go("holder", func(w *threading.Thread) {
		for i := 0; i < depth; i++ {
			f.l.Lock(w, o)
		}
		held = true
		// Force fat state at full depth; the wait releases and
		// re-acquires all five levels.
		if _, err := f.l.Wait(w, o, time.Millisecond); err != nil {
			t.Errorf("holder wait: %v", err)
		}
		close(atDepth)
		// Unwind with pauses so the contender's acquisition attempts
		// land between the intermediate releases.
		for i := 0; i < depth-1; i++ {
			if err := f.l.Unlock(w, o); err != nil {
				t.Errorf("holder unlock %d: %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
		held = false
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("holder final unlock: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-atDepth
	contenderDone, err := f.reg.Go("contender", func(w *threading.Thread) {
		f.l.Lock(w, o)
		if held {
			t.Error("contender acquired while the nested holder was still at depth > 0")
		}
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("contender unlock: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, done := range []<-chan struct{}{holderDone, contenderDone} {
		select {
		case <-done:
		case <-time.After(testutil.DefaultWaitTimeout):
			t.Fatal("nested-hold deflation case never completed")
		}
	}
}
