// Package conformance is a reusable behavioural test suite for
// lockapi.Locker implementations. Every implementation in the
// repository — the paper's thin locks and their queued/deflation/
// narrow-count variants, both historical baselines, and the reference
// oracle — must exhibit the same observable monitor semantics; this
// package states those semantics once, as executable subtests, instead
// of each implementation's test file restating a drifting subset.
//
// Usage, from any implementation's test package:
//
//	func TestConformance(t *testing.T) {
//		conformance.Run(t, func() lockapi.Locker { return New(...) })
//	}
//
// The factory must return a fresh, independent instance per call: the
// suite runs its subtests in parallel, each against its own instance,
// registry and heap.
package conformance

import (
	"testing"
	"time"

	"thinlock/internal/lockapi"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

// fixture is one subtest's isolated world.
type fixture struct {
	l    lockapi.Locker
	reg  *threading.Registry
	heap *object.Heap
}

func newFixture(t *testing.T, mk func() lockapi.Locker) *fixture {
	t.Helper()
	return &fixture{l: mk(), reg: threading.NewRegistry(), heap: object.NewHeap()}
}

func (f *fixture) thread(t *testing.T, name string) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach(name)
	if err != nil {
		t.Fatalf("attach %s: %v", name, err)
	}
	return th
}

// Run executes the full conformance suite against fresh instances built
// by mk.
func Run(t *testing.T, mk func() lockapi.Locker) {
	for _, tc := range []struct {
		name string
		fn   func(*testing.T, func() lockapi.Locker)
	}{
		{"IllegalMonitorState", testIllegalMonitorState},
		{"NestedBalance", testNestedBalance},
		{"WaitTimeout", testWaitTimeout},
		{"WaitNotify", testWaitNotify},
		{"NotifyAllWakesEveryWaiter", testNotifyAll},
		{"NotifyWithoutWaiters", testNotifyWithoutWaiters},
		{"WaitInterrupt", testWaitInterrupt},
		{"WaitWithPendingInterrupt", testWaitPendingInterrupt},
		{"WaitReacquiresDepth", testWaitReacquiresDepth},
		{"MutualExclusion", testMutualExclusion},
		{"SecondThreadAfterRepeatOwner", testSecondThreadAfterRepeatOwner},
		{"WaitAfterRepeatOwnership", testWaitAfterRepeatOwnership},
		{"InterruptDuringOwnershipTransfer", testInterruptDuringOwnershipTransfer},
		{"ContendedDeepNesting", testContendedDeepNesting},
		{"DeflateEnterRace", testDeflateEnterRace},
		{"DeflateVsWaiterPinsMonitor", testDeflateVsWait},
		{"ReinflateAfterDeflate", testReinflateAfterDeflate},
		{"NoDeflateWhileNested", testNoDeflateWhileNested},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tc.fn(t, mk)
		})
	}
}

// testIllegalMonitorState: every monitor operation except Lock must
// return ErrIllegalMonitorState when the caller does not own the
// monitor — whether it was never locked, or is locked by someone else.
func testIllegalMonitorState(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a, b := f.thread(t, "a"), f.thread(t, "b")
	o := f.heap.New("conf")

	for _, phase := range []string{"unlocked", "locked-by-other"} {
		if phase == "locked-by-other" {
			f.l.Lock(b, o)
		}
		if err := f.l.Unlock(a, o); err != monitor.ErrIllegalMonitorState {
			t.Errorf("%s: Unlock err = %v, want ErrIllegalMonitorState", phase, err)
		}
		if _, err := f.l.Wait(a, o, time.Millisecond); err != monitor.ErrIllegalMonitorState {
			t.Errorf("%s: Wait err = %v, want ErrIllegalMonitorState", phase, err)
		}
		if err := f.l.Notify(a, o); err != monitor.ErrIllegalMonitorState {
			t.Errorf("%s: Notify err = %v, want ErrIllegalMonitorState", phase, err)
		}
		if err := f.l.NotifyAll(a, o); err != monitor.ErrIllegalMonitorState {
			t.Errorf("%s: NotifyAll err = %v, want ErrIllegalMonitorState", phase, err)
		}
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatalf("owner unlock: %v", err)
	}
}

// testNestedBalance: recursive locking to a depth past any thin-count
// width must unwind with exactly as many successful unlocks, after
// which one more unlock is illegal and another thread can acquire.
func testNestedBalance(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a, b := f.thread(t, "a"), f.thread(t, "b")
	o := f.heap.New("conf")

	const depth = 300 // > 256: crosses every count-overflow boundary
	for i := 0; i < depth; i++ {
		f.l.Lock(a, o)
	}
	for i := 0; i < depth; i++ {
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatalf("unlock %d: %v", i, err)
		}
	}
	if err := f.l.Unlock(a, o); err != monitor.ErrIllegalMonitorState {
		t.Fatalf("extra unlock err = %v, want ErrIllegalMonitorState", err)
	}
	f.l.Lock(b, o) // must not block: fully released
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatalf("b unlock: %v", err)
	}
}

// testWaitTimeout: a timed wait with no notifier must return within a
// bounded time with notified == false and the monitor re-acquired.
func testWaitTimeout(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a := f.thread(t, "a")
	o := f.heap.New("conf")

	f.l.Lock(a, o)
	start := time.Now()
	notified, err := f.l.Wait(a, o, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if notified {
		t.Error("notified = true on a timeout")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("Wait returned after %v, before the 10ms timeout", elapsed)
	}
	// The monitor must be re-acquired: this unlock is the only release.
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock after wait: %v", err)
	}
	if err := f.l.Unlock(a, o); err != monitor.ErrIllegalMonitorState {
		t.Fatalf("second unlock err = %v, want ErrIllegalMonitorState", err)
	}
}

// testWaitNotify: a notified waiter must report notified == true and
// resume holding the monitor.
func testWaitNotify(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	waiting := make(chan struct{})
	result := make(chan bool, 1)
	done, err := f.reg.Go("waiter", func(w *threading.Thread) {
		f.l.Lock(w, o)
		close(waiting)
		notified, err := f.l.Wait(w, o, 0)
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("waiter unlock: %v", err)
		}
		result <- notified
	})
	if err != nil {
		t.Fatal(err)
	}
	<-waiting
	// The waiter holds the monitor until it blocks; acquiring here
	// guarantees it is inside Wait before the notify is sent.
	f.l.Lock(main, o)
	if err := f.l.Notify(main, o); err != nil {
		t.Fatalf("notify: %v", err)
	}
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	<-done
	if !<-result {
		t.Error("waiter reported notified = false after Notify")
	}
}

// testNotifyAll: NotifyAll must wake every waiter; none may be left for
// a timeout.
func testNotifyAll(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	const waiters = 4
	entered := make(chan struct{}, waiters)
	results := make(chan bool, waiters)
	var dones []<-chan struct{}
	for i := 0; i < waiters; i++ {
		done, err := f.reg.Go("waiter", func(w *threading.Thread) {
			f.l.Lock(w, o)
			entered <- struct{}{}
			notified, err := f.l.Wait(w, o, 0)
			if err != nil {
				t.Errorf("waiter: %v", err)
			}
			if err := f.l.Unlock(w, o); err != nil {
				t.Errorf("waiter unlock: %v", err)
			}
			results <- notified
		})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for i := 0; i < waiters; i++ {
		<-entered
	}
	f.l.Lock(main, o) // all waiters are inside Wait once this acquires
	if err := f.l.NotifyAll(main, o); err != nil {
		t.Fatalf("notifyAll: %v", err)
	}
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	for _, done := range dones {
		<-done
	}
	for i := 0; i < waiters; i++ {
		if !<-results {
			t.Error("a waiter reported notified = false after NotifyAll")
		}
	}
}

// testNotifyWithoutWaiters: notifying an owned monitor with an empty
// wait set is a legal no-op, and must not leave a phantom wakeup for a
// later waiter (the next timed wait still times out).
func testNotifyWithoutWaiters(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a := f.thread(t, "a")
	o := f.heap.New("conf")

	f.l.Lock(a, o)
	if err := f.l.Notify(a, o); err != nil {
		t.Fatalf("notify: %v", err)
	}
	if err := f.l.NotifyAll(a, o); err != nil {
		t.Fatalf("notifyAll: %v", err)
	}
	notified, err := f.l.Wait(a, o, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if notified {
		t.Error("notify with no waiters was buffered into a later wait")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
}

// testWaitInterrupt: interrupting a waiting thread must wake it with
// threading.ErrInterrupted, clear the interrupt flag, and leave it
// holding the monitor.
func testWaitInterrupt(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	waiting := make(chan struct{})
	var waiter *threading.Thread
	ready := make(chan struct{})
	done, err := f.reg.Go("waiter", func(w *threading.Thread) {
		waiter = w
		close(ready)
		f.l.Lock(w, o)
		close(waiting)
		if _, err := f.l.Wait(w, o, 0); err != threading.ErrInterrupted {
			t.Errorf("Wait err = %v, want ErrInterrupted", err)
		}
		if w.IsInterrupted() {
			t.Error("interrupt flag not cleared by the interrupted wait")
		}
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("unlock after interrupted wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	<-waiting
	f.l.Lock(main, o) // the waiter is inside Wait once this acquires
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatal(err)
	}
	waiter.Interrupt()
	select {
	case <-done:
	case <-time.After(testutil.DefaultWaitTimeout):
		t.Fatal("interrupted waiter never returned")
	}
}

// testWaitPendingInterrupt: a wait by an already-interrupted thread
// must fail immediately with ErrInterrupted, consuming the flag, and
// without releasing the monitor.
func testWaitPendingInterrupt(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a := f.thread(t, "a")
	o := f.heap.New("conf")

	f.l.Lock(a, o)
	a.Interrupt()
	start := time.Now()
	if _, err := f.l.Wait(a, o, 0); err != threading.ErrInterrupted {
		t.Fatalf("Wait err = %v, want ErrInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pending-interrupt wait blocked for %v", elapsed)
	}
	if a.IsInterrupted() {
		t.Error("interrupt flag not consumed")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
}

// testWaitReacquiresDepth: waiting at nesting depth 3 must re-acquire
// at depth 3 — the wait releases the monitor *completely* (another
// thread can lock it meanwhile) yet restores the full recursion count.
func testWaitReacquiresDepth(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	waiting := make(chan struct{})
	done, err := f.reg.Go("waiter", func(w *threading.Thread) {
		f.l.Lock(w, o)
		f.l.Lock(w, o)
		f.l.Lock(w, o)
		close(waiting)
		if _, err := f.l.Wait(w, o, 0); err != nil {
			t.Errorf("wait: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := f.l.Unlock(w, o); err != nil {
				t.Errorf("unlock %d after wait: %v", i, err)
			}
		}
		if err := f.l.Unlock(w, o); err != monitor.ErrIllegalMonitorState {
			t.Errorf("depth-4 unlock err = %v, want ErrIllegalMonitorState", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-waiting
	// The wait must have released all three levels: this lock succeeds.
	f.l.Lock(main, o)
	if err := f.l.Notify(main, o); err != nil {
		t.Fatalf("notify: %v", err)
	}
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	select {
	case <-done:
	case <-time.After(testutil.DefaultWaitTimeout):
		t.Fatal("waiter never resumed")
	}
}

// testSecondThreadAfterRepeatOwner: an object locked repeatedly by one
// thread — the pattern a reservation-based implementation optimizes for
// — must still hand over cleanly when a second thread arrives. For the
// biased locker this is the basic revocation path: thread b's first
// acquisition must revoke a's reservation, wait out the handshake, and
// acquire; a's subsequent re-acquisitions go through the conventional
// word the revoker published.
func testSecondThreadAfterRepeatOwner(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a, b := f.thread(t, "a"), f.thread(t, "b")
	o := f.heap.New("conf")

	// Establish single-owner history (installs a reservation where
	// supported).
	for i := 0; i < 10; i++ {
		f.l.Lock(a, o)
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatalf("owner round %d unlock: %v", i, err)
		}
	}
	// Second thread takes over.
	f.l.Lock(b, o)
	if err := f.l.Unlock(a, o); err != monitor.ErrIllegalMonitorState {
		t.Fatalf("a unlock while b owns: err = %v, want ErrIllegalMonitorState", err)
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatalf("b unlock: %v", err)
	}
	// The original owner must be able to come back.
	f.l.Lock(a, o)
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatalf("a relock unlock: %v", err)
	}
}

// testWaitAfterRepeatOwnership: a timed wait at nesting depth 2 on an
// object the thread has locked and released before. A reservation-based
// implementation must revoke its own bias and inflate, carrying the
// exact depth into the fat lock; the wait then times out and re-acquires
// at depth 2 as usual.
func testWaitAfterRepeatOwnership(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	a, b := f.thread(t, "a"), f.thread(t, "b")
	o := f.heap.New("conf")

	f.l.Lock(a, o)
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatalf("warmup unlock: %v", err)
	}
	f.l.Lock(a, o)
	f.l.Lock(a, o)
	notified, err := f.l.Wait(a, o, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if notified {
		t.Error("notified = true on a timeout")
	}
	for i := 0; i < 2; i++ {
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatalf("unlock %d after wait: %v", i, err)
		}
	}
	if err := f.l.Unlock(a, o); err != monitor.ErrIllegalMonitorState {
		t.Fatalf("extra unlock err = %v, want ErrIllegalMonitorState", err)
	}
	f.l.Lock(b, o) // fully released: must not block
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatalf("b unlock: %v", err)
	}
}

// testInterruptDuringOwnershipTransfer: a thread waiting on an object it
// had reserved (its wait forced the revoke-and-inflate) is interrupted
// while a second thread owns the monitor. The interrupt must cut through
// whatever lock shape the handover left behind: the waiter wakes with
// ErrInterrupted, re-acquires after the owner releases, and unwinds.
func testInterruptDuringOwnershipTransfer(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	main := f.thread(t, "main")
	o := f.heap.New("conf")

	waiting := make(chan struct{})
	var waiter *threading.Thread
	ready := make(chan struct{})
	done, err := f.reg.Go("waiter", func(w *threading.Thread) {
		waiter = w
		close(ready)
		f.l.Lock(w, o)
		if err := f.l.Unlock(w, o); err != nil { // establish reservation history
			t.Errorf("warmup unlock: %v", err)
		}
		f.l.Lock(w, o)
		close(waiting)
		if _, err := f.l.Wait(w, o, 0); err != threading.ErrInterrupted {
			t.Errorf("Wait err = %v, want ErrInterrupted", err)
		}
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("unlock after interrupted wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	<-waiting
	f.l.Lock(main, o) // the waiter is inside Wait once this acquires
	waiter.Interrupt()
	// Hold the monitor briefly so the interrupted waiter's re-acquisition
	// has to queue behind a live owner.
	time.Sleep(2 * time.Millisecond)
	if err := f.l.Unlock(main, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(testutil.DefaultWaitTimeout):
		t.Fatal("interrupted waiter never returned")
	}
}

// testContendedDeepNesting: one thread nests past every count-field
// boundary (thin counts, biased depth caps) while a second thread is
// already spinning for the lock; the deep owner must unwind fully and
// the contender must then acquire. This crosses the overflow
// self-revocation (biased) and count-overflow inflation (thin) paths
// while contention is live rather than in isolation.
func testContendedDeepNesting(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	o := f.heap.New("conf")

	const depth = 200 // > 128: past the biased depth cap and thin counts
	acquired := make(chan struct{})
	deepDone, err := f.reg.Go("deep", func(w *threading.Thread) {
		f.l.Lock(w, o)
		if err := f.l.Unlock(w, o); err != nil { // reservation history
			t.Errorf("warmup unlock: %v", err)
		}
		f.l.Lock(w, o)
		close(acquired)
		for i := 1; i < depth; i++ {
			f.l.Lock(w, o)
		}
		time.Sleep(time.Millisecond) // let the contender reach its spin
		for i := 0; i < depth; i++ {
			if err := f.l.Unlock(w, o); err != nil {
				t.Errorf("unlock %d: %v", i, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-acquired
	contenderDone, err := f.reg.Go("contender", func(w *threading.Thread) {
		f.l.Lock(w, o)
		if err := f.l.Unlock(w, o); err != nil {
			t.Errorf("contender unlock: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, done := range []<-chan struct{}{deepDone, contenderDone} {
		select {
		case <-done:
		case <-time.After(testutil.DefaultWaitTimeout):
			t.Fatal("deep nesting under contention never completed")
		}
	}
}

// testMutualExclusion: a brief stress of the lock path proper — N
// threads each increment an unprotected counter inside the monitor;
// every increment must survive.
func testMutualExclusion(t *testing.T, mk func() lockapi.Locker) {
	f := newFixture(t, mk)
	o := f.heap.New("conf")

	const (
		threads = 4
		rounds  = 200
	)
	counter := 0 // plain int: exclusivity tripwire (and -race sentinel)
	var dones []<-chan struct{}
	for i := 0; i < threads; i++ {
		done, err := f.reg.Go("worker", func(w *threading.Thread) {
			for r := 0; r < rounds; r++ {
				f.l.Lock(w, o)
				counter++
				if err := f.l.Unlock(w, o); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-time.After(testutil.DefaultWaitTimeout):
			t.Fatal("worker never finished")
		}
	}
	if counter != threads*rounds {
		t.Fatalf("counter = %d, want %d (lost updates: mutual exclusion broken)",
			counter, threads*rounds)
	}
}
