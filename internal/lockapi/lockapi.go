// Package lockapi defines the interface every lock implementation in this
// repository provides: the thin locks of the paper (internal/core), the
// Sun JDK 1.1.1 monitor-cache baseline (internal/monitorcache), and the
// IBM 1.1.2 hot-locks baseline (internal/hotlocks). The benchmark harness,
// the bytecode interpreter, and the synchronized class library are all
// written against this interface so that the three implementations can be
// compared on identical workloads, exactly as the paper compares
// "ThinLock", "JDK111" and "IBM112" on one JVM.
package lockapi

import (
	"time"

	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Locker is a monitor implementation over the shared object model.
//
// All methods take the acting thread explicitly (the analogue of the JVM's
// execution-environment pointer). Lock blocks until the lock is held and
// never fails; Unlock, Wait, Notify and NotifyAll report
// IllegalMonitorState-style misuse via an error.
type Locker interface {
	// Lock acquires o's monitor for t, blocking as needed. Recursive
	// locking is permitted to any depth.
	Lock(t *threading.Thread, o *object.Object)

	// Unlock releases one level of o's monitor.
	Unlock(t *threading.Thread, o *object.Object) error

	// Wait releases o's monitor completely, blocks until notified,
	// interrupted or d elapses (d <= 0 waits forever), and re-acquires
	// the monitor at the original depth. notified reports whether the
	// wakeup came from Notify/NotifyAll rather than the timeout.
	Wait(t *threading.Thread, o *object.Object, d time.Duration) (notified bool, err error)

	// Notify wakes one thread waiting on o.
	Notify(t *threading.Thread, o *object.Object) error

	// NotifyAll wakes every thread waiting on o.
	NotifyAll(t *threading.Thread, o *object.Object) error

	// Name identifies the implementation in reports ("ThinLock",
	// "JDK111", "IBM112", ...).
	Name() string
}

// Synchronized runs fn while holding o's monitor, the analogue of a Java
// synchronized block. It panics if the unlock fails, which would indicate
// a corrupted lock state.
func Synchronized(l Locker, t *threading.Thread, o *object.Object, fn func()) {
	l.Lock(t, o)
	defer func() {
		if err := l.Unlock(t, o); err != nil {
			panic("lockapi: unbalanced synchronized block: " + err.Error())
		}
	}()
	fn()
}
