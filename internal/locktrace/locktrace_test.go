package locktrace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

type fixture struct {
	tr   *Tracer
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture(capacity int) *fixture {
	return &fixture{
		tr:   New(core.NewDefault(), capacity),
		heap: object.NewHeap(),
		reg:  threading.NewRegistry(),
	}
}

func (f *fixture) thread(t *testing.T) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestTracerRecordsEvents(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	o := f.heap.New("Acct")

	f.tr.Lock(th, o)
	if err := f.tr.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if _, err := f.tr.Wait(th, o, time.Millisecond); err == nil {
		t.Fatal("wait without lock should fail")
	}
	if err := f.tr.Notify(th, o); err == nil {
		t.Fatal("notify without lock should fail")
	}

	evs := f.tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	wantKinds := []EventKind{EvAcquire, EvRelease, EvWait, EvNotify}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Thread != th.Index() || ev.Object != o.ID() || ev.Class != "Acct" {
			t.Errorf("event %d fields wrong: %+v", i, ev)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
	}
	if evs[0].Failed || evs[1].Failed {
		t.Error("successful ops marked failed")
	}
	if !evs[2].Failed || !evs[3].Failed {
		t.Error("failed ops not marked")
	}
	if !strings.Contains(evs[0].String(), "acquire Acct#") {
		t.Errorf("event String = %q", evs[0].String())
	}
	if f.tr.Name() != "ThinLock+trace" {
		t.Errorf("Name = %q", f.tr.Name())
	}
}

func TestTracerRecordsHeldSets(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")

	f.tr.Lock(th, a)
	f.tr.Lock(th, b) // held: [a]
	_ = f.tr.Unlock(th, b)
	_ = f.tr.Unlock(th, a)

	evs := f.tr.Events()
	if len(evs[0].Held) != 0 {
		t.Errorf("first acquire Held = %v, want empty", evs[0].Held)
	}
	if len(evs[1].Held) != 1 || evs[1].Held[0] != a.ID() {
		t.Errorf("second acquire Held = %v, want [%d]", evs[1].Held, a.ID())
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	t.Parallel()
	f := newFixture(4)
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < 6; i++ {
		f.tr.Lock(th, o)
		_ = f.tr.Unlock(th, o)
	}
	evs := f.tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want capacity 4", len(evs))
	}
	if f.tr.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", f.tr.Dropped())
	}
	// Remaining events are the most recent ones.
	if evs[len(evs)-1].Seq != 12 {
		t.Errorf("last seq = %d, want 12", evs[len(evs)-1].Seq)
	}
}

func TestAnalyzeCleanTrace(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")
	// Consistent ordering a->b, twice.
	for i := 0; i < 2; i++ {
		f.tr.Lock(th, a)
		f.tr.Lock(th, b)
		_ = f.tr.Unlock(th, b)
		_ = f.tr.Unlock(th, a)
	}
	rep := Analyze(f.tr.Events())
	if rep.HasHazards() {
		t.Fatalf("clean trace reported hazards:\n%s", rep)
	}
	if len(rep.Edges) != 1 || rep.Edges[0].From != a.ID() || rep.Edges[0].To != b.ID() {
		t.Fatalf("edges = %+v", rep.Edges)
	}
	if len(rep.Edges[0].Threads) != 1 || rep.Edges[0].Threads[0] != th.Index() {
		t.Fatalf("edge threads = %v", rep.Edges[0].Threads)
	}
}

func TestAnalyzeDetectsLockOrderInversion(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	t1, t2 := f.thread(t), f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")

	// t1: a then b; t2: b then a — sequentially, so no actual deadlock,
	// but the classic inversion the analysis must flag.
	f.tr.Lock(t1, a)
	f.tr.Lock(t1, b)
	_ = f.tr.Unlock(t1, b)
	_ = f.tr.Unlock(t1, a)

	f.tr.Lock(t2, b)
	f.tr.Lock(t2, a)
	_ = f.tr.Unlock(t2, a)
	_ = f.tr.Unlock(t2, b)

	rep := Analyze(f.tr.Events())
	if len(rep.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1:\n%s", len(rep.Cycles), rep)
	}
	if !rep.HasHazards() {
		t.Fatal("inversion not reported as hazard")
	}
	s := rep.String()
	if !strings.Contains(s, "lock-order inversion") {
		t.Errorf("report missing inversion line:\n%s", s)
	}
	cyc := rep.Cycles[0].String()
	if !strings.Contains(cyc, "->") {
		t.Errorf("cycle rendering = %q", cyc)
	}
}

func TestAnalyzeRecursiveLockingIsNotAnEdge(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	o := f.heap.New("X")
	f.tr.Lock(th, o)
	f.tr.Lock(th, o) // recursive
	_ = f.tr.Unlock(th, o)
	_ = f.tr.Unlock(th, o)
	rep := Analyze(f.tr.Events())
	if len(rep.Edges) != 0 || len(rep.Cycles) != 0 {
		t.Fatalf("recursive locking created edges: %+v", rep.Edges)
	}
	if rep.HasHazards() {
		t.Fatal("recursive locking flagged as hazard")
	}
}

func TestAnalyzeUnbalancedTrace(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	o := f.heap.New("X")
	f.tr.Lock(th, o) // never released
	rep := Analyze(f.tr.Events())
	if len(rep.Unbalanced) != 1 {
		t.Fatalf("unbalanced = %v", rep.Unbalanced)
	}
	if got := rep.Unbalanced[th.Index()]; len(got) != 1 || got[0] != o.ID() {
		t.Fatalf("unbalanced[%d] = %v", th.Index(), got)
	}
	if !strings.Contains(rep.String(), "ends holding") {
		t.Errorf("report = %q", rep.String())
	}
	_ = f.tr.Unlock(th, o)
}

func TestAnalyzeThreeWayCycle(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")
	c := f.heap.New("C")
	pairs := [][2]*object.Object{{a, b}, {b, c}, {c, a}}
	for _, p := range pairs {
		f.tr.Lock(th, p[0])
		f.tr.Lock(th, p[1])
		_ = f.tr.Unlock(th, p[1])
		_ = f.tr.Unlock(th, p[0])
	}
	rep := Analyze(f.tr.Events())
	if len(rep.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(rep.Cycles))
	}
	if len(rep.Cycles[0].Objects) != 3 {
		t.Fatalf("cycle length = %d, want 3", len(rep.Cycles[0].Objects))
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	o := f.heap.New("X")
	const goroutines, iters = 6, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.tr.Lock(th, o)
				if err := f.tr.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}(th)
	}
	wg.Wait()
	evs := f.tr.Events()
	if len(evs) != goroutines*iters*2 {
		t.Fatalf("events = %d, want %d", len(evs), goroutines*iters*2)
	}
	rep := Analyze(evs)
	if rep.HasHazards() {
		t.Fatalf("hazards in balanced concurrent trace:\n%s", rep)
	}
}

func TestEventKindStrings(t *testing.T) {
	t.Parallel()
	for k, want := range map[EventKind]string{
		EvAcquire: "acquire", EvRelease: "release",
		EvWait: "wait", EvNotify: "notify", EventKind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("EventKind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
