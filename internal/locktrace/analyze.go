package locktrace

import (
	"fmt"
	"sort"
	"strings"
)

// OrderEdge records that some thread acquired To while holding From.
type OrderEdge struct {
	From, To uint64
	// Threads lists the thread indices that created the edge.
	Threads []uint16
}

// Cycle is a lock-order inversion: objects that are acquired in
// conflicting orders by different code paths — the classic potential
// deadlock.
type Cycle struct {
	// Objects in cycle order: each is acquired while holding the
	// previous (the last wraps to the first).
	Objects []uint64
}

// String renders the cycle.
func (c Cycle) String() string {
	parts := make([]string, len(c.Objects))
	for i, o := range c.Objects {
		parts[i] = fmt.Sprintf("#%d", o)
	}
	return strings.Join(parts, " -> ") + " -> " + parts[0]
}

// Report is the outcome of analyzing a trace.
type Report struct {
	// Events is the number of events analyzed.
	Events int
	// FailedOps counts operations that returned IllegalMonitorState.
	FailedOps int
	// Unbalanced maps thread index to object ids still held at the end
	// of the trace.
	Unbalanced map[uint16][]uint64
	// Edges is the held-while-acquiring order graph (self-edges from
	// recursive locking are excluded).
	Edges []OrderEdge
	// Cycles are the detected lock-order inversions.
	Cycles []Cycle
}

// HasHazards reports whether the trace shows failed operations, locks
// held at the end, or order inversions.
func (r Report) HasHazards() bool {
	return r.FailedOps > 0 || len(r.Unbalanced) > 0 || len(r.Cycles) > 0
}

// String summarizes the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d failed ops, %d order edges, %d cycles\n",
		r.Events, r.FailedOps, len(r.Edges), len(r.Cycles))
	if len(r.Unbalanced) > 0 {
		threads := make([]int, 0, len(r.Unbalanced))
		for t := range r.Unbalanced {
			threads = append(threads, int(t))
		}
		sort.Ints(threads)
		for _, t := range threads {
			fmt.Fprintf(&b, "  thread %d ends holding %v\n", t, r.Unbalanced[uint16(t)])
		}
	}
	for _, c := range r.Cycles {
		fmt.Fprintf(&b, "  lock-order inversion: %s\n", c)
	}
	return b.String()
}

// Analyze inspects a trace for hazards.
func Analyze(events []Event) Report {
	rep := Report{Events: len(events), Unbalanced: make(map[uint16][]uint64)}

	type edgeKey struct{ from, to uint64 }
	edgeThreads := make(map[edgeKey]map[uint16]bool)
	held := make(map[uint16][]uint64)

	for _, e := range events {
		if e.Failed {
			rep.FailedOps++
		}
		switch e.Kind {
		case EvAcquire:
			for _, h := range e.Held {
				if h == e.Object {
					continue // recursive locking is not an ordering edge
				}
				k := edgeKey{h, e.Object}
				if edgeThreads[k] == nil {
					edgeThreads[k] = make(map[uint16]bool)
				}
				edgeThreads[k][e.Thread] = true
			}
			held[e.Thread] = append(held[e.Thread], e.Object)
		case EvRelease:
			if e.Failed {
				continue
			}
			hs := held[e.Thread]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i] == e.Object {
					held[e.Thread] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		}
	}

	for t, hs := range held {
		if len(hs) > 0 {
			rep.Unbalanced[t] = hs
		}
	}

	// Materialize the edge list deterministically.
	keys := make([]edgeKey, 0, len(edgeThreads))
	for k := range edgeThreads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	adj := make(map[uint64][]uint64)
	for _, k := range keys {
		var ts []uint16
		for t := range edgeThreads[k] {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		rep.Edges = append(rep.Edges, OrderEdge{From: k.from, To: k.to, Threads: ts})
		adj[k.from] = append(adj[k.from], k.to)
	}

	rep.Cycles = findCycles(adj)
	return rep
}

// findCycles returns one representative cycle per strongly-entangled
// object group, via DFS with a recursion stack.
func findCycles(adj map[uint64][]uint64) []Cycle {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int)
	onPath := []uint64{}
	var cycles []Cycle
	reported := make(map[uint64]bool) // avoid re-reporting through the same node

	var dfs func(u uint64)
	dfs = func(u uint64) {
		color[u] = gray
		onPath = append(onPath, u)
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				dfs(v)
			case gray:
				// Found a back edge: the cycle is the path segment
				// from v to u.
				start := -1
				for i, x := range onPath {
					if x == v {
						start = i
						break
					}
				}
				if start >= 0 && !reported[v] {
					reported[v] = true
					cycles = append(cycles, Cycle{
						Objects: append([]uint64(nil), onPath[start:]...),
					})
				}
			}
		}
		onPath = onPath[:len(onPath)-1]
		color[u] = black
	}

	nodes := make([]uint64, 0, len(adj))
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, u := range nodes {
		if color[u] == white {
			dfs(u)
		}
	}
	return cycles
}
