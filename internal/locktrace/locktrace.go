// Package locktrace records lock-operation event streams and analyzes
// them for hazards: unbalanced lock/unlock pairs, and lock-order
// inversions (cycles in the held-while-acquiring graph) that indicate
// potential deadlocks. It wraps any lockapi.Locker, so traces can be
// taken against thin locks or either baseline.
package locktrace

import (
	"fmt"
	"sync"
	"time"

	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// EventKind classifies one traced operation.
type EventKind int

const (
	// EvAcquire is a completed Lock.
	EvAcquire EventKind = iota
	// EvRelease is an Unlock (Failed marks IllegalMonitorState).
	EvRelease
	// EvWait is a Wait call (recorded at return; Failed marks error).
	EvWait
	// EvNotify is a Notify or NotifyAll.
	EvNotify
)

// String returns the event-kind label.
func (k EventKind) String() string {
	switch k {
	case EvAcquire:
		return "acquire"
	case EvRelease:
		return "release"
	case EvWait:
		return "wait"
	case EvNotify:
		return "notify"
	default:
		return "unknown"
	}
}

// Event is one recorded operation.
type Event struct {
	Seq    uint64
	Kind   EventKind
	Thread uint16
	Object uint64
	Class  string
	// Held lists the objects the thread already held when acquiring
	// (recorded for EvAcquire only); this drives the order analysis.
	Held []uint64
	// Failed marks operations that returned IllegalMonitorState.
	Failed bool
	// AtNanos is the monotonic time of the event in nanoseconds relative
	// to the tracer's creation. Monotonic-relative timestamps order
	// correctly across threads (wall clocks can step) and serialize as a
	// plain integer; the trace exporters consume this field directly.
	AtNanos int64
}

// At returns the event time as a Duration since the tracer's creation,
// derived from AtNanos (the previous representation of this field).
func (e Event) At() time.Duration { return time.Duration(e.AtNanos) }

// String renders one event.
func (e Event) String() string {
	status := ""
	if e.Failed {
		status = " FAILED"
	}
	return fmt.Sprintf("#%d t%d %s %s#%d%s", e.Seq, e.Thread, e.Kind, e.Class, e.Object, status)
}

// Tracer wraps a Locker and records every operation. Recording is
// bounded: beyond capacity the earliest events are dropped (the analysis
// notes truncation).
type Tracer struct {
	inner lockapi.Locker

	mu       sync.Mutex
	events   []Event
	seq      uint64
	dropped  uint64
	capacity int
	start    time.Time
	// held tracks, per thread, the multiset of objects currently held.
	held map[uint16][]uint64
}

// DefaultCapacity bounds a tracer's event buffer unless overridden.
const DefaultCapacity = 1 << 16

// New returns a Tracer around inner with the given event capacity
// (0 means DefaultCapacity).
func New(inner lockapi.Locker, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		inner:    inner,
		capacity: capacity,
		start:    time.Now(),
		held:     make(map[uint16][]uint64),
	}
}

// Name implements lockapi.Locker.
func (tr *Tracer) Name() string { return tr.inner.Name() + "+trace" }

// Inner returns the wrapped implementation.
func (tr *Tracer) Inner() lockapi.Locker { return tr.inner }

// record appends an event under the tracer lock.
func (tr *Tracer) record(e Event) {
	tr.mu.Lock()
	tr.seq++
	e.Seq = tr.seq
	e.AtNanos = int64(time.Since(tr.start))
	if len(tr.events) >= tr.capacity {
		tr.events = tr.events[1:]
		tr.dropped++
	}
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

// Lock implements lockapi.Locker.
func (tr *Tracer) Lock(t *threading.Thread, o *object.Object) {
	tr.mu.Lock()
	heldNow := append([]uint64(nil), tr.held[t.Index()]...)
	tr.mu.Unlock()

	tr.inner.Lock(t, o)

	tr.mu.Lock()
	tr.held[t.Index()] = append(tr.held[t.Index()], o.ID())
	tr.mu.Unlock()
	tr.record(Event{Kind: EvAcquire, Thread: t.Index(), Object: o.ID(),
		Class: o.Class(), Held: heldNow})
}

// Unlock implements lockapi.Locker.
func (tr *Tracer) Unlock(t *threading.Thread, o *object.Object) error {
	err := tr.inner.Unlock(t, o)
	if err == nil {
		tr.mu.Lock()
		hs := tr.held[t.Index()]
		for i := len(hs) - 1; i >= 0; i-- {
			if hs[i] == o.ID() {
				tr.held[t.Index()] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
		tr.mu.Unlock()
	}
	tr.record(Event{Kind: EvRelease, Thread: t.Index(), Object: o.ID(),
		Class: o.Class(), Failed: err != nil})
	return err
}

// Wait implements lockapi.Locker.
func (tr *Tracer) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	notified, err := tr.inner.Wait(t, o, d)
	tr.record(Event{Kind: EvWait, Thread: t.Index(), Object: o.ID(),
		Class: o.Class(), Failed: err != nil})
	return notified, err
}

// Notify implements lockapi.Locker.
func (tr *Tracer) Notify(t *threading.Thread, o *object.Object) error {
	err := tr.inner.Notify(t, o)
	tr.record(Event{Kind: EvNotify, Thread: t.Index(), Object: o.ID(),
		Class: o.Class(), Failed: err != nil})
	return err
}

// NotifyAll implements lockapi.Locker.
func (tr *Tracer) NotifyAll(t *threading.Thread, o *object.Object) error {
	err := tr.inner.NotifyAll(t, o)
	tr.record(Event{Kind: EvNotify, Thread: t.Index(), Object: o.ID(),
		Class: o.Class(), Failed: err != nil})
	return err
}

// Events returns a snapshot of the recorded events.
func (tr *Tracer) Events() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Event(nil), tr.events...)
}

// Dropped reports how many events the bounded buffer discarded.
func (tr *Tracer) Dropped() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}
