package locktrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: turns a trace's event stream into the JSON
// array format that chrome://tracing and ui.perfetto.dev load directly,
// so a contended schedule can be inspected as a per-thread timeline.
// Lock-held intervals become complete ("X") duration events on the
// owning thread's track; waits, notifies and failed operations become
// instant ("i") events.

// TracePID is the synthetic process id used for all exported events
// (the repository models one VM).
const TracePID = 1

// traceEvent is one Chrome trace-event object. Every event carries the
// required ph/ts/tid/pid fields; ts and dur are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes events as a Chrome trace-event JSON array.
// Acquire/release pairs per (thread, object) are matched into duration
// events; an acquire with no matching release (still held when the
// trace stopped) is closed at the last event's timestamp.
//
// The output is a deterministic function of the event *set*: events are
// first copied and stable-sorted by (thread, timestamp, sequence), so
// any permutation of the same events — e.g. two snapshots of one
// concurrent run taken through differently-interleaved appends —
// serializes to identical bytes. Acquire/release matching only needs
// per-thread order, which the sort preserves.
func WriteChromeTrace(w io.Writer, events []Event) error {
	events = append([]Event(nil), events...)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Thread != events[j].Thread {
			return events[i].Thread < events[j].Thread
		}
		if events[i].AtNanos != events[j].AtNanos {
			return events[i].AtNanos < events[j].AtNanos
		}
		return events[i].Seq < events[j].Seq
	})
	out := make([]traceEvent, 0, len(events)+8)

	// Thread-name metadata events for every thread in the trace.
	seen := map[uint16]bool{}
	for _, e := range events {
		if !seen[e.Thread] {
			seen[e.Thread] = true
			out = append(out, traceEvent{
				Name: "thread_name", Ph: "M", Ts: 0,
				Pid: TracePID, Tid: int(e.Thread),
				Args: map[string]any{"name": fmt.Sprintf("thread %d", e.Thread)},
			})
		}
	}

	var endNs int64
	for _, e := range events {
		if e.AtNanos > endNs {
			endNs = e.AtNanos
		}
	}

	type holdKey struct {
		thread uint16
		object uint64
	}
	type hold struct {
		startNs int64
		name    string
	}
	held := map[holdKey][]hold{}
	span := func(h hold, tid uint16, untilNs int64) traceEvent {
		d := usec(untilNs - h.startNs)
		return traceEvent{
			Name: h.name, Cat: "lock", Ph: "X",
			Ts: usec(h.startNs), Dur: &d,
			Pid: TracePID, Tid: int(tid),
		}
	}
	instant := func(e Event, name string) traceEvent {
		return traceEvent{
			Name: name, Cat: "lock", Ph: "i",
			Ts: usec(e.AtNanos), Pid: TracePID, Tid: int(e.Thread),
			Scope: "t",
			Args:  map[string]any{"object": fmt.Sprintf("%s#%d", e.Class, e.Object)},
		}
	}

	for _, e := range events {
		k := holdKey{e.Thread, e.Object}
		name := fmt.Sprintf("%s#%d", e.Class, e.Object)
		switch e.Kind {
		case EvAcquire:
			held[k] = append(held[k], hold{startNs: e.AtNanos, name: name})
		case EvRelease:
			if e.Failed {
				out = append(out, instant(e, "release FAILED"))
				continue
			}
			if hs := held[k]; len(hs) > 0 {
				h := hs[len(hs)-1]
				held[k] = hs[:len(hs)-1]
				out = append(out, span(h, e.Thread, e.AtNanos))
			}
		case EvWait:
			label := "wait"
			if e.Failed {
				label = "wait FAILED"
			}
			out = append(out, instant(e, label))
		case EvNotify:
			label := "notify"
			if e.Failed {
				label = "notify FAILED"
			}
			out = append(out, instant(e, label))
		}
	}

	// Close out locks still held when the trace stopped, in a
	// deterministic order (held is a map).
	var leftover []traceEvent
	for k, hs := range held {
		for _, h := range hs {
			leftover = append(leftover, span(h, k.thread, endNs))
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		if leftover[i].Tid != leftover[j].Tid {
			return leftover[i].Tid < leftover[j].Tid
		}
		return leftover[i].Ts < leftover[j].Ts
	})
	out = append(out, leftover...)

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ChromeTraceJSON returns the trace as a JSON byte slice.
func ChromeTraceJSON(events []Event) ([]byte, error) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, events); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
