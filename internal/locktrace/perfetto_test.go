package locktrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"thinlock/internal/threading"
)

// syntheticEvents is a fixed schedule: thread 1 holds A (with a nested
// reacquire), thread 2 waits and notifies on B, and thread 1 leaves C
// held when the trace ends.
func syntheticEvents() []Event {
	return []Event{
		{Seq: 1, Kind: EvAcquire, Thread: 1, Object: 10, Class: "Vector", AtNanos: 1000},
		{Seq: 2, Kind: EvAcquire, Thread: 1, Object: 10, Class: "Vector", AtNanos: 2000},
		{Seq: 3, Kind: EvAcquire, Thread: 2, Object: 20, Class: "Object", AtNanos: 2500},
		{Seq: 4, Kind: EvWait, Thread: 2, Object: 20, Class: "Object", AtNanos: 3000},
		{Seq: 5, Kind: EvRelease, Thread: 1, Object: 10, Class: "Vector", AtNanos: 4000},
		{Seq: 6, Kind: EvNotify, Thread: 2, Object: 20, Class: "Object", AtNanos: 4500},
		{Seq: 7, Kind: EvRelease, Thread: 1, Object: 10, Class: "Vector", AtNanos: 5000},
		{Seq: 8, Kind: EvRelease, Thread: 2, Object: 20, Class: "Object", AtNanos: 5500},
		{Seq: 9, Kind: EvRelease, Thread: 2, Object: 99, Class: "Object", Failed: true, AtNanos: 6000},
		{Seq: 10, Kind: EvAcquire, Thread: 1, Object: 30, Class: "Hashtable", AtNanos: 7000},
		// Trace ends with object 30 still held: the exporter must close
		// the span at the last timestamp.
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestChromeTraceGolden(t *testing.T) {
	got, err := ChromeTraceJSON(syntheticEvents())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("trace output diverged from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestChromeTraceIsValidAndComplete(t *testing.T) {
	t.Parallel()
	got, err := ChromeTraceJSON(syntheticEvents())
	if err != nil {
		t.Fatal(err)
	}
	// The export must be a JSON array of objects, each carrying the
	// required ph/ts/tid/pid fields.
	var events []map[string]any
	if err := json.Unmarshal(got, &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	counts := map[string]int{}
	for i, e := range events {
		for _, field := range []string{"ph", "ts", "tid", "pid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, e)
			}
		}
		ph, _ := e["ph"].(string)
		counts[ph]++
		switch ph {
		case "X":
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("complete event %d has no dur: %v", i, e)
			}
		case "M", "i":
		default:
			t.Errorf("event %d has unexpected phase %q", i, ph)
		}
		if pid, _ := e["pid"].(float64); int(pid) != TracePID {
			t.Errorf("event %d pid = %v, want %d", i, e["pid"], TracePID)
		}
	}
	// 2 threads' metadata; 3 completed spans (nested pair on object 10)
	// plus the still-held object 30 closed at trace end; wait + notify +
	// failed release instants.
	if counts["M"] != 2 || counts["X"] != 4 || counts["i"] != 3 {
		t.Errorf("phase counts = %v, want M=2 X=4 i=3", counts)
	}
}

func TestChromeTraceNestedSpansAreOrdered(t *testing.T) {
	t.Parallel()
	got, err := ChromeTraceJSON(syntheticEvents())
	if err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(got, &events); err != nil {
		t.Fatal(err)
	}
	// The nested reacquire of object 10 must close before the outer
	// hold: LIFO matching pairs the release at 4000 with the acquire at
	// 2000 (2µs span) and the release at 5000 with the acquire at 1000
	// (4µs span).
	var spans []traceEvent
	for _, e := range events {
		if e.Ph == "X" && e.Name == "Vector#10" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("Vector#10 spans = %d, want 2", len(spans))
	}
	if spans[0].Ts != 2.0 || *spans[0].Dur != 2.0 {
		t.Errorf("inner span ts=%v dur=%v, want 2µs at 2µs", spans[0].Ts, *spans[0].Dur)
	}
	if spans[1].Ts != 1.0 || *spans[1].Dur != 4.0 {
		t.Errorf("outer span ts=%v dur=%v, want 4µs at 1µs", spans[1].Ts, *spans[1].Dur)
	}
}

// TestChromeTraceIsPermutationInvariant pins the determinism contract:
// the export is a function of the event set, not of the order the
// tracer's appends happened to interleave in.
func TestChromeTraceIsPermutationInvariant(t *testing.T) {
	t.Parallel()
	events := syntheticEvents()
	want, err := ChromeTraceJSON(events)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic shuffle (rotate + swap pattern), exercised from a
	// few different offsets.
	for rot := 1; rot < len(events); rot += 3 {
		perm := append(append([]Event(nil), events[rot:]...), events[:rot]...)
		for i := 0; i+1 < len(perm); i += 2 {
			perm[i], perm[i+1] = perm[i+1], perm[i]
		}
		got, err := ChromeTraceJSON(perm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rotation %d: permuted events serialized differently\ngot:\n%s\nwant:\n%s", rot, got, want)
		}
	}
	// The input slice must not be reordered in place.
	if events[0].Seq != 1 || events[len(events)-1].Seq != 10 {
		t.Error("WriteChromeTrace mutated the caller's event slice")
	}
}

// TestChromeTraceConcurrentWorkloadIsByteStable drives a genuinely
// concurrent workload through a tracer and checks the export of the
// resulting event snapshot is byte-identical across repeated
// serializations (and across permutations of the snapshot) — the
// property the permutation test pins, now witnessed on live data.
func TestChromeTraceConcurrentWorkloadIsByteStable(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	shared := f.heap.New("Shared")
	other := f.heap.New("Other")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		if _, err := f.reg.Go("worker", func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.tr.Lock(th, shared)
				f.tr.Lock(th, other)
				if err := f.tr.Unlock(th, other); err != nil {
					t.Error(err)
				}
				if err := f.tr.Unlock(th, shared); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	events := f.tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	first, err := ChromeTraceJSON(events)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ChromeTraceJSON(events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("same events serialized differently on the second call")
	}
	rev := make([]Event, len(events))
	for i, e := range events {
		rev[len(events)-1-i] = e
	}
	reversed, err := ChromeTraceJSON(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, reversed) {
		t.Error("reversed event order changed the serialized trace")
	}
}

func TestChromeTraceFromLiveTracer(t *testing.T) {
	t.Parallel()
	f := newFixture(0)
	th := f.thread(t)
	o := f.heap.New("Object")
	f.tr.Lock(th, o)
	if err := f.tr.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	out, err := ChromeTraceJSON(f.tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(out, &events); err != nil {
		t.Fatalf("live trace is not valid JSON: %v", err)
	}
	sawSpan := false
	for _, e := range events {
		if e["ph"] == "X" {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Error("live lock/unlock produced no duration span")
	}
}
