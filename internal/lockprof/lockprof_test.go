package lockprof_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"unicode/utf8"

	"thinlock/internal/core"
	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// newProfiledFixture installs a fresh every-entry profiler and returns
// a thin-lock fixture. Tests using it must not be parallel (global
// profiler registration).
func newProfiledFixture(t testing.TB) (*lockprof.Profiler, *lockFixture) {
	t.Helper()
	p := lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
	t.Cleanup(lockprof.Disable)
	return p, newLockFixture(t)
}

func TestNestedSlowPathIsAttributed(t *testing.T) {
	p, f := newProfiledFixture(t)
	for i := 0; i < 10; i++ {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o) // nested: slow path, sampled
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}
	snap := p.Snapshot()
	if len(snap.Sites) == 0 {
		t.Fatal("no sites recorded")
	}
	site := snap.Sites[0]
	if site.SlowEntries != 10 {
		t.Errorf("slow entries = %d, want 10", site.SlowEntries)
	}
	if site.Kind != "go" {
		t.Errorf("kind = %q, want go", site.Kind)
	}
	// The display label must land on this test, not lock machinery.
	if !strings.Contains(site.Label, "lockprof_test") && !strings.Contains(site.Label, "TestNestedSlowPath") {
		t.Errorf("label %q does not name the workload frame", site.Label)
	}
	if len(snap.Objects) != 1 || snap.Objects[0].SlowEntries != 10 {
		t.Fatalf("objects = %+v, want one with 10 slow entries", snap.Objects)
	}
	if snap.Objects[0].Class != "Object" {
		t.Errorf("object class = %q, want Object", snap.Objects[0].Class)
	}
}

func TestVMSiteAttribution(t *testing.T) {
	p, f := newProfiledFixture(t)
	f.th.PublishFrame("Demo.transfer", 17)
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.th.ClearFrame()
	snap := p.Snapshot()
	if len(snap.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(snap.Sites))
	}
	s := snap.Sites[0]
	if s.Kind != "vm" || s.Label != "Demo.transfer@17" {
		t.Errorf("site = %s/%s, want vm/Demo.transfer@17", s.Kind, s.Label)
	}
	if len(s.Frames) != 1 || s.Frames[0].File != "<minijava>" || s.Frames[0].Line != 17 {
		t.Errorf("frames = %+v, want one synthetic <minijava>:17 frame", s.Frames)
	}
}

func TestSyncMethodPrologueLabel(t *testing.T) {
	p, f := newProfiledFixture(t)
	f.th.PublishFrame("Demo.sync", -1)
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.th.ClearFrame()
	snap := p.Snapshot()
	if len(snap.Sites) != 1 || snap.Sites[0].Label != "Demo.sync@sync-entry" {
		t.Fatalf("sites = %+v, want one Demo.sync@sync-entry", snap.Sites)
	}
}

// TestInflationCausesRecorded drives the wait-inflation path (the one
// cause reachable deterministically from a single thread) and checks
// per-cause accounting.
func TestInflationCausesRecorded(t *testing.T) {
	p, f := newProfiledFixture(t)
	f.l.Lock(f.th, f.o)
	// Notify wakes nobody; Wait with a timeout inflates first.
	if _, err := f.l.Wait(f.th, f.o, 1); err != nil {
		t.Fatal(err)
	}
	f.l.Unlock(f.th, f.o)
	snap := p.Snapshot()
	var total uint64
	for _, s := range snap.Sites {
		total += s.Inflations["wait"]
	}
	if total != 1 {
		t.Fatalf("wait inflations = %d, want 1 (sites: %+v)", total, snap.Sites)
	}
	if len(snap.Objects) == 0 || snap.Objects[0].Inflations != 1 {
		t.Fatalf("object inflations = %+v, want 1", snap.Objects)
	}
}

// TestContendedSitesDistinct checks the acceptance shape: two
// goroutines contending through two distinct call sites yield two
// distinct site records with contention evidence (park time or
// inflations).
func TestContendedSitesDistinct(t *testing.T) {
	p, _ := newProfiledFixture(t)
	l := core.NewDefault()
	heap := object.NewHeap()
	o := heap.New("Shared")
	reg := threading.NewRegistry()

	var wg sync.WaitGroup
	hammer := func(name string, body func(*threading.Thread)) {
		wg.Add(1)
		done, err := reg.Go(name, func(th *threading.Thread) {
			defer wg.Done()
			body(th)
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = done
	}
	// Two textually distinct acquisition sites; the nested lock
	// guarantees slow-path entries even if the goroutines never overlap.
	hammer("a", func(th *threading.Thread) {
		for i := 0; i < 3000; i++ {
			l.Lock(th, o)
			l.Lock(th, o)
			l.Unlock(th, o)
			l.Unlock(th, o)
		}
	})
	hammer("b", func(th *threading.Thread) {
		for i := 0; i < 3000; i++ {
			l.Lock(th, o)
			l.Lock(th, o)
			l.Unlock(th, o)
			l.Unlock(th, o)
		}
	})
	wg.Wait()

	snap := p.Snapshot()
	contended := 0
	for _, s := range snap.Sites {
		if s.SlowEntries > 0 {
			contended++
		}
	}
	if contended < 1 {
		t.Fatalf("no contended sites recorded; sites = %+v", snap.Sites)
	}
	// Contention is scheduler-dependent on one CPU; require the
	// distinct-sites property only when both sites actually went slow.
	if len(snap.Sites) >= 2 && snap.Sites[0].Label == snap.Sites[1].Label {
		t.Errorf("distinct call sites collapsed: %q", snap.Sites[0].Label)
	}
}

func TestSnapshotPrometheusEscapesAndTypes(t *testing.T) {
	p, f := newProfiledFixture(t)
	// A hostile site label: a VM method name carrying every character
	// the exposition format requires escaped.
	f.th.PublishFrame("Bad\\Class.\"m\"\nethod", 3)
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.th.ClearFrame()
	var b strings.Builder
	if err := p.Snapshot().WritePrometheus(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE thinlock_lockprof_slow_entries_total counter",
		"# TYPE thinlock_lockprof_delay_ns_total counter",
		"# TYPE thinlock_lockprof_sites gauge",
		`site="Bad\\Class.\"m\"\nethod@3"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "\"m\"\ne") {
		t.Error("raw quote or newline leaked into a label value")
	}
}

func TestSnapshotPrometheusMultiByteLabels(t *testing.T) {
	p, f := newProfiledFixture(t)
	// Multi-byte method names (2-, 3- and 4-byte UTF-8) wrapped around a
	// backslash: the byte-wise escaper must rewrite only the backslash
	// and leave every rune intact — mojibake here would corrupt the
	// whole exposition for scrapers that validate UTF-8.
	f.th.PublishFrame("Bank口座.転送\\é🔒", 7)
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.th.ClearFrame()
	var b strings.Builder
	if err := p.Snapshot().WritePrometheus(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if want := `site="Bank口座.転送\\é🔒@7"`; !strings.Contains(out, want) {
		t.Errorf("prometheus output missing %q\n%s", want, out)
	}
	if !utf8.ValidString(out) {
		t.Error("exposition output is not valid UTF-8")
	}
}

func TestServerEndpoints(t *testing.T) {
	p, f := newProfiledFixture(t)
	m := telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	_ = m
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	_ = p

	srv := httptest.NewServer(lockprof.Handler())
	defer srv.Close()
	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/metrics"); code != 200 ||
		!strings.Contains(body, "thinlock_slow_path_entries_total") ||
		!strings.Contains(body, "thinlock_lockprof_slow_entries_total") {
		t.Errorf("/metrics = %d, missing telemetry or lockprof series", code)
	}
	if code, body, ct := get("/debug/vars"); code != 200 ||
		!strings.Contains(body, `"telemetry"`) || !strings.Contains(body, `"lockprof"`) ||
		!strings.Contains(ct, "application/json") {
		t.Errorf("/debug/vars = %d (%s), want merged JSON", code, ct)
	}
	if code, body, _ := get("/debug/lockprof/top"); code != 200 ||
		!strings.Contains(body, "Top") || !strings.Contains(body, "SITE") {
		t.Errorf("/debug/lockprof/top = %d, want report", code)
	}
	if code, body, _ := get("/debug/pprof/lockcontention"); code != 200 ||
		len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Errorf("/debug/pprof/lockcontention = %d, want gzip payload", code)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}

	lockprof.Disable()
	telemetry.Disable()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/lockprof/top", "/debug/pprof/lockcontention"} {
		if code, _, _ := get(path); code != 503 {
			t.Errorf("%s with everything disabled = %d, want 503", path, code)
		}
	}
}

// TestTableBoundsDropNotGrow floods the object table past its capacity
// and checks the profiler degrades by counting drops instead of
// growing.
func TestTableBoundsDropNotGrow(t *testing.T) {
	p, f := newProfiledFixture(t)
	for i := 0; i < 20000; i++ {
		o := f.heap.New("Flood")
		f.l.Lock(f.th, o)
		f.l.Lock(f.th, o)
		f.l.Unlock(f.th, o)
		f.l.Unlock(f.th, o)
	}
	snap := p.Snapshot()
	if len(snap.Objects) > 16*512 {
		t.Errorf("object table grew to %d records, bound is %d", len(snap.Objects), 16*512)
	}
	if snap.ObjectDrops == 0 {
		t.Error("flooding 20000 objects dropped nothing; bound not enforced?")
	}
}

// TestConcurrentHooksAreRaceFree hammers every hook from several
// threads; meaningful chiefly under -race.
func TestConcurrentHooksAreRaceFree(t *testing.T) {
	p, _ := newProfiledFixture(t)
	l := core.NewDefault()
	heap := object.NewHeap()
	objs := []*object.Object{heap.New("A"), heap.New("B")}
	reg := threading.NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		if _, err := reg.Go("g", func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				o := objs[i%len(objs)]
				l.Lock(th, o)
				l.Lock(th, o)
				l.Unlock(th, o)
				l.Unlock(th, o)
				if i%512 == 0 {
					_ = p.Snapshot()
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	snap := p.Snapshot()
	if len(snap.Sites) == 0 {
		t.Fatal("no sites after concurrent hammering")
	}
}
