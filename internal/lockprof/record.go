package lockprof

import "sync/atomic"

// InflationCause classifies why a thin lock inflated, mirroring the
// three inflation counters of internal/telemetry (and of the paper's
// protocol: contention for the lock word, nested-count overflow, and a
// wait operation on a thin-locked object).
type InflationCause uint8

const (
	// CauseContention marks inflation after a contended acquisition.
	CauseContention InflationCause = iota
	// CauseOverflow marks inflation by nested-count overflow.
	CauseOverflow
	// CauseWait marks inflation by a wait on a thin-locked object.
	CauseWait

	// NumCauses is the number of inflation causes.
	NumCauses
)

// String returns the cause's stable label.
func (c InflationCause) String() string {
	switch c {
	case CauseContention:
		return "contention"
	case CauseOverflow:
		return "overflow"
	case CauseWait:
		return "wait"
	default:
		return "unknown"
	}
}

// SiteRecord accumulates events attributed to one lock-acquisition
// site. All fields are atomics so hooks never take a lock; a record is
// published once into the site table and then only ever added to.
type SiteRecord struct {
	// Key identifies the site.
	Key SiteKey

	// SlowEntries counts sampled slow-path acquisitions at this site.
	SlowEntries atomic.Uint64
	// CASFailures counts lock-word compare-and-swap retries observed
	// while a sampled acquisition from this site was in flight.
	CASFailures atomic.Uint64
	// Inflations counts inflations triggered at this site, by cause.
	Inflations [NumCauses]atomic.Uint64
	// Revocations counts bias revocations triggered at this site, by
	// cause (the causes mirror inflation: contention by a second thread,
	// nested overflow past the biased depth limit, or a Wait). Only the
	// biased implementation feeds these.
	Revocations [NumCauses]atomic.Uint64
	// Deflations counts fat locks deflated back to thin at this site
	// (the site of the final unlock that found the monitor quiescent).
	// Only deflating implementations feed this; there is no cause
	// dimension — quiescence on final unlock is the only trigger.
	Deflations atomic.Uint64
	// ParkNs accumulates time sampled acquisitions from this site spent
	// parked (contention queue or monitor entry queue).
	ParkNs atomic.Uint64
	// DelayNs accumulates total slow-path latency (entry to acquisition)
	// for sampled acquisitions from this site — the "delay" dimension of
	// the exported contention profile.
	DelayNs atomic.Uint64
	// HoldNs accumulates lock hold time for sampled acquisitions,
	// measured from acquisition to the same thread's next slow-path
	// unlock of the same object. Fat (inflated) locks always release
	// through the slow path, so contended holds are covered; purely thin
	// holds release on the untouched fast path and are not.
	HoldNs atomic.Uint64
}

// InflationTotal sums the inflation counters across causes.
func (r *SiteRecord) InflationTotal() uint64 {
	var n uint64
	for c := range r.Inflations {
		n += r.Inflations[c].Load()
	}
	return n
}

// RevocationTotal sums the revocation counters across causes.
func (r *SiteRecord) RevocationTotal() uint64 {
	var n uint64
	for c := range r.Revocations {
		n += r.Revocations[c].Load()
	}
	return n
}

// ObjectRecord accumulates events attributed to one lock object — the
// per-monitor provenance view (which objects are hot, per the paper's
// Figure 4/5 locality-of-contention discussion).
type ObjectRecord struct {
	// ID is the object's heap allocation id.
	ID uint64
	// Class is the object's class tag at first observation.
	Class string

	// SlowEntries counts sampled slow-path acquisitions of this object.
	SlowEntries atomic.Uint64
	// Inflations counts inflations of this object (any cause).
	Inflations atomic.Uint64
	// Revocations counts bias revocations of this object (any cause).
	Revocations atomic.Uint64
	// Deflations counts deflations of this object back to a thin lock.
	Deflations atomic.Uint64
	// ParkNs accumulates park time spent acquiring this object.
	ParkNs atomic.Uint64
	// DelayNs accumulates slow-path acquisition latency for this object.
	DelayNs atomic.Uint64
	// HoldNs accumulates sampled hold time for this object (see
	// SiteRecord.HoldNs for the measurement window).
	HoldNs atomic.Uint64
}
