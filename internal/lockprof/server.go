package lockprof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"thinlock/internal/lockdep"
	"thinlock/internal/telemetry"
)

// MergedSnapshot pairs the telemetry snapshot (global counters and
// histograms) with the lockprof snapshot (per-site and per-object
// attribution) for the /debug/vars endpoint.
type MergedSnapshot struct {
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	LockProf  *Snapshot           `json:"lockprof,omitempty"`
}

// Route is one registered observability endpoint. The index page is
// generated from this table, so the two cannot drift apart.
type Route struct {
	// Pattern is the mux registration pattern.
	Pattern string
	// Example is the display form shown on the index (the pattern plus
	// its most useful query parameters).
	Example string
	// Doc is a one-line description.
	Doc string

	handler http.HandlerFunc
}

// routes is the single registration table behind Handler, Routes and
// the generated index page.
var routes = []Route{
	{"/metrics", "/metrics",
		"Prometheus text: telemetry + lockprof site series", serveMetrics},
	{"/debug/vars", "/debug/vars",
		"merged JSON snapshot (telemetry + lockprof)", serveVars},
	{"/debug/lockprof/top", "/debug/lockprof/top?n=20",
		"human-readable top-N hot locks", serveTop},
	{"/debug/lockprof/snapshot", "/debug/lockprof/snapshot",
		"full lockprof snapshot as JSON", serveSnapshot},
	{"/debug/pprof/lockcontention", "/debug/pprof/lockcontention",
		"pprof contention profile (gzip protobuf)", servePprof},
	{"/debug/lockdep/graph", "/debug/lockdep/graph?format=dot",
		"lock-order graph (format=dot|json)", serveLockdepGraph},
	{"/debug/lockdep/waitfor", "/debug/lockdep/waitfor",
		"live wait-for snapshot + cycles as JSON", serveLockdepWaitFor},
	{"/debug/lockdep/report", "/debug/lockdep/report?format=text",
		"inversion/deadlock report (format=text|json)", serveLockdepReport},
	{"/debug/lockscope/series", "/debug/lockscope/series?n=0&format=json",
		"windowed time-series samples (format=json|csv)", serveScopeSeries},
	{"/debug/lockscope/stream", "/debug/lockscope/stream",
		"live sample stream (server-sent events)", serveScopeStream},
	{"/debug/lockscope/", "/debug/lockscope/",
		"live contention dashboard (HTML)", serveScopeDashboard},
}

// Routes returns a copy of the endpoint registration table, in
// registration order (the index page's order).
func Routes() []Route {
	out := make([]Route, len(routes))
	copy(out, routes)
	return out
}

// Handler returns the live observability endpoint mux. The endpoint
// set is defined by the routes table — see Routes — and the index at /
// is generated from the same table.
//
// Each request reads the globally installed telemetry, profiler,
// lockdep and lockscope instances at handling time, so the handler can
// be registered before any is enabled; endpoints whose source is
// disabled answer 503.
func Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.Pattern, rt.handler)
	}
	mux.HandleFunc("/", serveIndex)
	return mux
}

func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "thinlock observability endpoints:")
	wid := 0
	for _, rt := range routes {
		if len(rt.Example) > wid {
			wid = len(rt.Example)
		}
	}
	for _, rt := range routes {
		fmt.Fprintf(w, "  %-*s  %s\n", wid, rt.Example, rt.Doc)
	}
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	m := telemetry.Active()
	p := Active()
	if m == nil && p == nil {
		http.Error(w, "telemetry and lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if m != nil {
		if err := m.Snapshot().WritePrometheus(w); err != nil {
			return
		}
	}
	if p != nil {
		topN, _ := strconv.Atoi(r.URL.Query().Get("n"))
		_ = p.Snapshot().WritePrometheus(w, topN)
	}
}

func serveVars(w http.ResponseWriter, r *http.Request) {
	m := telemetry.Active()
	p := Active()
	if m == nil && p == nil {
		http.Error(w, "telemetry and lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	var merged MergedSnapshot
	if m != nil {
		snap := m.Snapshot()
		merged.Telemetry = &snap
	}
	if p != nil {
		merged.LockProf = p.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(merged)
}

func serveTop(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n <= 0 {
		n = 20
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = p.Snapshot().WriteTop(w, n)
}

func serveSnapshot(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = p.Snapshot().WriteJSON(w)
}

func servePprof(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lockcontention.pb.gz"`)
	_ = p.Snapshot().WritePprof(w)
}

// activeLockdep answers the install check for the lockdep endpoints,
// writing the 503 itself when the watchdog is off.
func activeLockdep(w http.ResponseWriter) *lockdep.Lockdep {
	d := lockdep.Active()
	if d == nil {
		http.Error(w, "lockdep disabled", http.StatusServiceUnavailable)
	}
	return d
}

func serveLockdepGraph(w http.ResponseWriter, r *http.Request) {
	d := activeLockdep(w)
	if d == nil {
		return
	}
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d.GraphJSON())
	case "", "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		d.WriteDOT(w)
	default:
		http.Error(w, "unknown format (want dot or json)", http.StatusBadRequest)
	}
}

func serveLockdepWaitFor(w http.ResponseWriter, r *http.Request) {
	d := activeLockdep(w)
	if d == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d.WaitForJSON())
}

func serveLockdepReport(w http.ResponseWriter, r *http.Request) {
	d := activeLockdep(w)
	if d == nil {
		return
	}
	switch r.URL.Query().Get("format") {
	case "json":
		data, err := d.MarshalJSONReport()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(data)
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		d.WriteReport(w)
	default:
		http.Error(w, "unknown format (want text or json)", http.StatusBadRequest)
	}
}
