package lockprof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"thinlock/internal/telemetry"
)

// MergedSnapshot pairs the telemetry snapshot (global counters and
// histograms) with the lockprof snapshot (per-site and per-object
// attribution) for the /debug/vars endpoint.
type MergedSnapshot struct {
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	LockProf  *Snapshot           `json:"lockprof,omitempty"`
}

// Handler returns the live observability endpoint mux:
//
//	/metrics                     Prometheus text: telemetry + lockprof site series
//	/debug/vars                  merged JSON snapshot (telemetry + lockprof)
//	/debug/lockprof/top          human-readable top-N hot locks (?n=20)
//	/debug/lockprof/snapshot     full lockprof snapshot as JSON
//	/debug/pprof/lockcontention  pprof contention profile (gzip protobuf)
//
// Each request reads the globally installed telemetry/profiler at
// handling time, so the handler can be registered before either is
// enabled; endpoints whose source is disabled answer 503.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/debug/vars", serveVars)
	mux.HandleFunc("/debug/lockprof/top", serveTop)
	mux.HandleFunc("/debug/lockprof/snapshot", serveSnapshot)
	mux.HandleFunc("/debug/pprof/lockcontention", servePprof)
	mux.HandleFunc("/", serveIndex)
	return mux
}

func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "thinlock observability endpoints:")
	for _, p := range []string{
		"/metrics",
		"/debug/vars",
		"/debug/lockprof/top?n=20",
		"/debug/lockprof/snapshot",
		"/debug/pprof/lockcontention",
	} {
		fmt.Fprintln(w, "  "+p)
	}
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	m := telemetry.Active()
	p := Active()
	if m == nil && p == nil {
		http.Error(w, "telemetry and lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if m != nil {
		if err := m.Snapshot().WritePrometheus(w); err != nil {
			return
		}
	}
	if p != nil {
		topN, _ := strconv.Atoi(r.URL.Query().Get("n"))
		_ = p.Snapshot().WritePrometheus(w, topN)
	}
}

func serveVars(w http.ResponseWriter, r *http.Request) {
	m := telemetry.Active()
	p := Active()
	if m == nil && p == nil {
		http.Error(w, "telemetry and lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	var merged MergedSnapshot
	if m != nil {
		snap := m.Snapshot()
		merged.Telemetry = &snap
	}
	if p != nil {
		merged.LockProf = p.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(merged)
}

func serveTop(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n <= 0 {
		n = 20
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = p.Snapshot().WriteTop(w, n)
}

func serveSnapshot(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = p.Snapshot().WriteJSON(w)
}

func servePprof(w http.ResponseWriter, r *http.Request) {
	p := Active()
	if p == nil {
		http.Error(w, "lockprof disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="lockcontention.pb.gz"`)
	_ = p.Snapshot().WritePprof(w)
}
