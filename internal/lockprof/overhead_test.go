package lockprof_test

// Overhead contract for the contention profiler (see the lockprof
// package comment): with the profiler disabled, no lock path may
// allocate and the uncontended lock/unlock cycle must not regress
// measurably (the fast path has no hook sites at all; the slow path
// pays one atomic pointer load). With the profiler enabled, only
// sampled slow-path entries may allocate (the first visit to a site or
// object inserts a record), and a steady-state sampled slow path is
// allocation-free.

import (
	"sort"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

type lockFixture struct {
	l    *core.ThinLocks
	heap *object.Heap
	th   *threading.Thread
	o    *object.Object
}

func newLockFixture(t testing.TB) *lockFixture {
	t.Helper()
	f := &lockFixture{l: core.NewDefault(), heap: object.NewHeap()}
	reg := threading.NewRegistry()
	th, err := reg.Attach("bench")
	if err != nil {
		t.Fatal(err)
	}
	f.th = th
	f.o = f.heap.New("Object")
	return f
}

// Not parallel: owns the global profiler registration.
func TestDisabledProfilerDoesNotAllocate(t *testing.T) {
	lockprof.Disable()
	telemetry.Disable()
	f := newLockFixture(t)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		if err := f.l.Unlock(f.th, f.o); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("disabled fast path allocates %.1f objects per op", allocs)
	}
	// Nested acquisition drives the slow path through every lockprof
	// hook site in its disabled state.
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("disabled slow path allocates %.1f objects per op", allocs)
	}
}

// Not parallel: owns the global profiler registration.
func TestEnabledSteadyStateSlowPathDoesNotAllocate(t *testing.T) {
	p := lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
	defer lockprof.Disable()
	f := newLockFixture(t)
	// First pass inserts the site and object records.
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	f.l.Unlock(f.th, f.o)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("enabled steady-state slow path allocates %.1f objects per op", allocs)
	}
	snap := p.Snapshot()
	if len(snap.Sites) == 0 || snap.Sites[0].SlowEntries == 0 {
		t.Fatal("profiler recorded nothing (test measured the wrong path)")
	}
}

// medianCycle times reps uncontended lock/unlock cycles and returns the
// median of samples runs, which is robust against scheduler noise.
func medianCycle(f *lockFixture, samples, reps int) time.Duration {
	ds := make([]time.Duration, 0, samples)
	for s := 0; s < samples; s++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TestDisabledProfilerOverheadIsBounded checks the acceptance bound:
// with the profiler merely compiled in but disabled, the uncontended
// lock/unlock cycle must stay within budget of itself — the fast path
// carries no hook, so the true ratio is ~1.0 and the issue's < 5%
// requirement holds by construction. The assertion allows 2x so CI
// scheduling jitter cannot flake; the precise number is reported by
// BenchmarkUncontendedLockUnlock. Enabling the profiler must also not
// slow the uncontended cycle (it only hooks slow paths). Not parallel:
// owns the global profiler registration and times itself.
func TestDisabledProfilerOverheadIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	f := newLockFixture(t)
	const samples, reps = 9, 20000
	lockprof.Disable()
	telemetry.Disable()
	medianCycle(f, 3, reps) // warm up
	base := medianCycle(f, samples, reps)
	lockprof.Enable(lockprof.New(lockprof.Config{}))
	defer lockprof.Disable()
	on := medianCycle(f, samples, reps)
	if base > 0 && float64(on) > 2*float64(base) {
		t.Errorf("enabled profiler slowed uncontended cycle %.2fx (off=%v on=%v)",
			float64(on)/float64(base), base, on)
	}
}

// BenchmarkUncontendedLockUnlock/Disabled vs /Enabled is the precise
// measurement behind the < 5% fast-path bound:
//
//	go test -bench UncontendedLockUnlock -benchmem ./internal/lockprof/
func BenchmarkUncontendedLockUnlock(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		lockprof.Disable()
		run(b)
	})
	b.Run("Enabled", func(b *testing.B) {
		lockprof.Enable(lockprof.New(lockprof.Config{}))
		defer lockprof.Disable()
		run(b)
	})
}

// BenchmarkNestedLockUnlock measures the slow path, where the hooks
// actually live — Enabled pays the sampling counter on every entry and
// a stack capture on sampled ones.
func BenchmarkNestedLockUnlock(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		lockprof.Disable()
		run(b)
	})
	b.Run("Sampled1in8", func(b *testing.B) {
		lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 8}))
		defer lockprof.Disable()
		run(b)
	})
	b.Run("SampledEvery", func(b *testing.B) {
		lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
		defer lockprof.Disable()
		run(b)
	})
}
