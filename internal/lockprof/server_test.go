package lockprof_test

// Endpoint contract tests for the /debug server: every route's status,
// Content-Type, and body shape — including the lockdep routes, which
// the older TestServerEndpoints predates.

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// newServerFixture enables telemetry, lockprof and lockdep, generates
// traffic that populates all three — two sequential threads nest two
// guards in inverse orders, so the lockdep graph holds one ABBA
// inversion — and returns a test server over lockprof.Handler. Not
// parallel: owns every global registration.
func newServerFixture(t *testing.T) *httptest.Server {
	t.Helper()
	telemetry.Enable(telemetry.New())
	t.Cleanup(telemetry.Disable)
	lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
	t.Cleanup(lockprof.Disable)
	lockdep.Enable(lockdep.New(lockdep.Config{}))
	t.Cleanup(lockdep.Disable)

	f := newLockFixture(t)
	a, b := f.heap.New("GuardA"), f.heap.New("GuardB")
	reg := threading.NewRegistry()
	for i, order := range [][2]*object.Object{{a, b}, {b, a}} {
		order := order
		name := []string{"ab", "ba"}[i]
		done, err := reg.Go(name, func(th *threading.Thread) {
			f.l.Lock(th, order[0])
			f.l.Lock(th, order[1])
			if err := f.l.Unlock(th, order[1]); err != nil {
				t.Error(err)
			}
			if err := f.l.Unlock(th, order[0]); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		<-done
	}
	// Recursive locking on the fixture object feeds lockprof's slow path
	// so the profiler endpoints have sites to show.
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o)
	if err := f.l.Unlock(f.th, f.o); err != nil {
		t.Fatal(err)
	}
	if err := f.l.Unlock(f.th, f.o); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// Not parallel: owns the global telemetry/lockprof/lockdep registrations.
func TestEveryEndpointContentTypeAndShape(t *testing.T) {
	srv := newServerFixture(t)

	cases := []struct {
		path     string
		wantCT   string
		wantBody []string
	}{
		{"/", "text/plain",
			[]string{"/metrics", "/debug/lockdep/graph", "/debug/lockdep/waitfor", "/debug/lockdep/report"}},
		{"/metrics", "text/plain; version=0.0.4",
			[]string{"thinlock_slow_path_entries_total", "# TYPE"}},
		{"/debug/vars", "application/json",
			[]string{`"telemetry"`, `"lockprof"`}},
		{"/debug/lockprof/top", "text/plain",
			[]string{"SITE"}},
		{"/debug/lockprof/snapshot", "application/json",
			[]string{`"sites"`}},
		{"/debug/lockdep/graph", "text/vnd.graphviz",
			[]string{"digraph lockorder", "rankdir=LR", "GuardA#", "->"}},
		{"/debug/lockdep/graph?format=dot", "text/vnd.graphviz",
			[]string{"digraph lockorder"}},
		{"/debug/lockdep/graph?format=json", "application/json",
			[]string{`"nodes"`, `"edges"`, `"inversions"`, `"stats"`}},
		{"/debug/lockdep/waitfor", "application/json",
			[]string{`"waiters"`, `"cycles"`}},
		{"/debug/lockdep/report", "text/plain",
			[]string{"lockdep:", "lock-order inversion #1", "GuardA#", "GuardB#"}},
		{"/debug/lockdep/report?format=json", "application/json",
			[]string{`"stats"`, `"inversions"`, `"wait_for"`}},
	}
	for _, tc := range cases {
		code, body, ct := get(t, srv, tc.path)
		if code != 200 {
			t.Errorf("%s = %d, want 200", tc.path, code)
			continue
		}
		if !strings.HasPrefix(ct, tc.wantCT) {
			t.Errorf("%s Content-Type = %q, want prefix %q", tc.path, ct, tc.wantCT)
		}
		for _, want := range tc.wantBody {
			if !strings.Contains(body, want) {
				t.Errorf("%s body missing %q:\n%s", tc.path, want, body)
			}
		}
	}

	// The pprof endpoint is binary: gzip magic, not text.
	if code, body, ct := get(t, srv, "/debug/pprof/lockcontention"); code != 200 ||
		ct != "application/octet-stream" || len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Errorf("/debug/pprof/lockcontention = %d (%s), want gzip payload", code, ct)
	}

	// JSON endpoints must actually parse.
	for _, path := range []string{
		"/debug/vars", "/debug/lockprof/snapshot",
		"/debug/lockdep/graph?format=json", "/debug/lockdep/waitfor",
		"/debug/lockdep/report?format=json",
	} {
		_, body, _ := get(t, srv, path)
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s is not valid JSON: %v", path, err)
		}
	}

	// The graph JSON must carry the ABBA inversion with its edges marked.
	_, body, _ := get(t, srv, "/debug/lockdep/graph?format=json")
	var graph lockdep.GraphExport
	if err := json.Unmarshal([]byte(body), &graph); err != nil {
		t.Fatalf("graph json: %v", err)
	}
	if graph.Stats.Inversions != 1 {
		t.Errorf("graph stats report %d inversions, want 1", graph.Stats.Inversions)
	}
	inverted := 0
	for _, e := range graph.Edges {
		if e.Inverted {
			inverted++
		}
	}
	if inverted != 2 {
		t.Errorf("%d edges marked inverted, want the 2 ABBA legs", inverted)
	}
}

// Not parallel: owns the global lockdep registration (deliberately none).
func TestLockdepEndpointsAnswer503WhenDisabled(t *testing.T) {
	lockdep.Disable()
	telemetry.Enable(telemetry.New())
	t.Cleanup(telemetry.Disable)
	lockprof.Enable(lockprof.New(lockprof.Config{}))
	t.Cleanup(lockprof.Disable)
	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)

	for _, path := range []string{
		"/debug/lockdep/graph", "/debug/lockdep/waitfor", "/debug/lockdep/report",
	} {
		if code, body, _ := get(t, srv, path); code != 503 || !strings.Contains(body, "lockdep disabled") {
			t.Errorf("%s with lockdep disabled = %d, want 503", path, code)
		}
	}
	// The rest of the mux must keep working without lockdep.
	if code, _, _ := get(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics without lockdep = %d, want 200", code)
	}
}

// Not parallel: owns the global lockdep registration.
func TestLockdepEndpointsRejectUnknownFormats(t *testing.T) {
	lockdep.Enable(lockdep.New(lockdep.Config{}))
	t.Cleanup(lockdep.Disable)
	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)

	for _, path := range []string{
		"/debug/lockdep/graph?format=yaml", "/debug/lockdep/report?format=yaml",
	} {
		if code, _, _ := get(t, srv, path); code != 400 {
			t.Errorf("%s = %d, want 400", path, code)
		}
	}
}
