package lockprof_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"testing"

	"thinlock/internal/lockprof"
)

// rawProfile is the subset of profile.proto this test decodes back out
// of the encoder: enough to prove the wire format is well-formed and
// the contention data round-trips.
type rawProfile struct {
	sampleTypes [][2]int64 // (type, unit) string indices
	samples     []rawSample
	locations   map[uint64]rawLocation
	functions   map[uint64]rawFunction
	strings     []string
	period      int64
	periodType  [2]int64
	duration    int64
}

type rawSample struct {
	locationIDs []uint64
	values      []int64
}

type rawLocation struct {
	id         uint64
	functionID uint64
	line       int64
}

type rawFunction struct {
	id             uint64
	name, filename int64
}

// wire is a minimal protobuf wire-format reader.
type wire struct {
	data []byte
	pos  int
	err  error
}

func (r *wire) done() bool { return r.err != nil || r.pos >= len(r.data) }

func (r *wire) varint() uint64 {
	var v uint64
	for shift := 0; ; shift += 7 {
		if r.pos >= len(r.data) || shift > 63 {
			r.err = fmt.Errorf("truncated varint at %d", r.pos)
			return 0
		}
		b := r.data[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
}

func (r *wire) field() (num int, wt int) {
	tag := r.varint()
	return int(tag >> 3), int(tag & 7)
}

func (r *wire) bytes() []byte {
	n := r.varint()
	if r.err != nil || r.pos+int(n) > len(r.data) {
		r.err = fmt.Errorf("truncated bytes field at %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *wire) skip(wt int) {
	switch wt {
	case 0:
		r.varint()
	case 2:
		r.bytes()
	case 5:
		r.pos += 4
	case 1:
		r.pos += 8
	default:
		r.err = fmt.Errorf("unsupported wire type %d", wt)
	}
}

func packedUints(data []byte) []uint64 {
	r := &wire{data: data}
	var out []uint64
	for !r.done() {
		out = append(out, r.varint())
	}
	return out
}

func parseProfile(t *testing.T, data []byte) *rawProfile {
	t.Helper()
	p := &rawProfile{
		locations: map[uint64]rawLocation{},
		functions: map[uint64]rawFunction{},
	}
	r := &wire{data: data}
	for !r.done() {
		num, wt := r.field()
		switch num {
		case 1: // sample_type
			vt := &wire{data: r.bytes()}
			var st [2]int64
			for !vt.done() {
				n, w := vt.field()
				switch n {
				case 1:
					st[0] = int64(vt.varint())
				case 2:
					st[1] = int64(vt.varint())
				default:
					vt.skip(w)
				}
			}
			p.sampleTypes = append(p.sampleTypes, st)
		case 2: // sample
			sm := &wire{data: r.bytes()}
			var s rawSample
			for !sm.done() {
				n, w := sm.field()
				switch n {
				case 1:
					s.locationIDs = packedUints(sm.bytes())
				case 2:
					for _, v := range packedUints(sm.bytes()) {
						s.values = append(s.values, int64(v))
					}
				default:
					sm.skip(w)
				}
			}
			p.samples = append(p.samples, s)
		case 4: // location
			lm := &wire{data: r.bytes()}
			var loc rawLocation
			for !lm.done() {
				n, w := lm.field()
				switch n {
				case 1:
					loc.id = lm.varint()
				case 4: // line message
					ln := &wire{data: lm.bytes()}
					for !ln.done() {
						n2, w2 := ln.field()
						switch n2 {
						case 1:
							loc.functionID = ln.varint()
						case 2:
							loc.line = int64(ln.varint())
						default:
							ln.skip(w2)
						}
					}
				default:
					lm.skip(w)
				}
			}
			p.locations[loc.id] = loc
		case 5: // function
			fm := &wire{data: r.bytes()}
			var fn rawFunction
			for !fm.done() {
				n, w := fm.field()
				switch n {
				case 1:
					fn.id = fm.varint()
				case 2:
					fn.name = int64(fm.varint())
				case 4:
					fn.filename = int64(fm.varint())
				default:
					fm.skip(w)
				}
			}
			p.functions[fn.id] = fn
		case 6: // string_table
			p.strings = append(p.strings, string(r.bytes()))
		case 10:
			p.duration = int64(r.varint())
		case 11:
			vt := &wire{data: r.bytes()}
			for !vt.done() {
				n, w := vt.field()
				switch n {
				case 1:
					p.periodType[0] = int64(vt.varint())
				case 2:
					p.periodType[1] = int64(vt.varint())
				default:
					vt.skip(w)
				}
			}
		case 12:
			p.period = int64(r.varint())
		default:
			r.skip(wt)
		}
	}
	if r.err != nil {
		t.Fatalf("profile does not parse: %v", r.err)
	}
	return p
}

func TestPprofProfileRoundTrips(t *testing.T) {
	prof, f := newProfiledFixture(t)
	f.th.PublishFrame("Bank.transfer", 9)
	for i := 0; i < 5; i++ {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}
	f.th.ClearFrame()
	snap := prof.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	p := parseProfile(t, raw)

	if len(p.strings) == 0 || p.strings[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	str := func(i int64) string {
		if i < 0 || int(i) >= len(p.strings) {
			t.Fatalf("string index %d out of range (%d strings)", i, len(p.strings))
		}
		return p.strings[i]
	}

	if len(p.sampleTypes) != 2 ||
		str(p.sampleTypes[0][0]) != "contentions" || str(p.sampleTypes[0][1]) != "count" ||
		str(p.sampleTypes[1][0]) != "delay" || str(p.sampleTypes[1][1]) != "nanoseconds" {
		t.Fatalf("sample types = %v, want contentions/count + delay/nanoseconds", p.sampleTypes)
	}
	if str(p.periodType[0]) != "contentions" || p.period != int64(snap.SampleEvery) {
		t.Errorf("period = %d/%s, want %d/contentions", p.period, str(p.periodType[0]), snap.SampleEvery)
	}
	if len(p.samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(p.samples))
	}
	s := p.samples[0]
	if len(s.values) != 2 || s.values[0] != 5 {
		t.Errorf("sample values = %v, want [5, <delay>]", s.values)
	}
	if len(s.locationIDs) != 1 {
		t.Fatalf("locations per VM sample = %d, want 1", len(s.locationIDs))
	}
	loc, ok := p.locations[s.locationIDs[0]]
	if !ok {
		t.Fatalf("sample references unknown location %d", s.locationIDs[0])
	}
	fn, ok := p.functions[loc.functionID]
	if !ok {
		t.Fatalf("location references unknown function %d", loc.functionID)
	}
	if str(fn.name) != "Bank.transfer" || str(fn.filename) != "<minijava>" || loc.line != 9 {
		t.Errorf("frame = %s (%s:%d), want Bank.transfer (<minijava>:9)",
			str(fn.name), str(fn.filename), loc.line)
	}
}

func TestPprofGoSitesHaveResolvedStacks(t *testing.T) {
	prof, f := newProfiledFixture(t)
	for i := 0; i < 3; i++ {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}
	var buf bytes.Buffer
	if err := prof.Snapshot().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	p := parseProfile(t, raw)
	if len(p.samples) == 0 {
		t.Fatal("no samples")
	}
	found := false
	for _, s := range p.samples {
		for _, id := range s.locationIDs {
			loc, ok := p.locations[id]
			if !ok {
				t.Fatalf("unknown location %d", id)
			}
			fn, ok := p.functions[loc.functionID]
			if !ok {
				t.Fatalf("unknown function %d", loc.functionID)
			}
			name := p.strings[fn.name]
			if name == "" {
				t.Error("empty function name in stack")
			}
			if name == "thinlock/internal/lockprof_test.TestPprofGoSitesHaveResolvedStacks" {
				found = true
			}
		}
	}
	if !found {
		t.Error("test frame absent from every sample stack")
	}
	// The empty-profile path must also produce a parseable file.
	empty := lockprof.New(lockprof.Config{}).Snapshot()
	buf.Reset()
	if err := empty.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr2, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := io.ReadAll(zr2)
	if err != nil {
		t.Fatal(err)
	}
	if ep := parseProfile(t, raw2); len(ep.samples) != 0 || len(ep.sampleTypes) != 2 {
		t.Errorf("empty profile: %d samples, %d sample types", len(ep.samples), len(ep.sampleTypes))
	}
}
