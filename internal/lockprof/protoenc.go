package lockprof

// Minimal protobuf wire-format encoder, just enough to emit a
// pprof profile.proto message without any dependency on a protobuf
// library. Only the two wire types pprof uses are needed: varint (0)
// and length-delimited (2). Nested messages and packed repeated fields
// are both length-delimited byte strings, so the whole encoder is
// "append varints and byte slices with tags".

// protoBuf accumulates an encoded message.
type protoBuf struct {
	data []byte
}

// varint appends v in base-128 varint encoding.
func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.data = append(b.data, byte(v)|0x80)
		v >>= 7
	}
	b.data = append(b.data, byte(v))
}

// tag appends a field tag with the given wire type.
func (b *protoBuf) tag(field int, wire int) {
	b.varint(uint64(field)<<3 | uint64(wire))
}

// uint64Field appends a varint field. Zero values are skipped, matching
// proto3 semantics (and keeping profiles small).
func (b *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

// int64Field appends a signed varint field (pprof uses plain int64, not
// zigzag, for its signed fields).
func (b *protoBuf) int64Field(field int, v int64) {
	b.uint64Field(field, uint64(v))
}

// bytesField appends a length-delimited field.
func (b *protoBuf) bytesField(field int, data []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(data)))
	b.data = append(b.data, data...)
}

// messageField appends a nested message built by fn.
func (b *protoBuf) messageField(field int, fn func(*protoBuf)) {
	var nested protoBuf
	fn(&nested)
	b.bytesField(field, nested.data)
}

// packedUint64s appends a packed repeated varint field.
func (b *protoBuf) packedUint64s(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var nested protoBuf
	for _, v := range vs {
		nested.varint(v)
	}
	b.bytesField(field, nested.data)
}

// packedInt64s appends a packed repeated signed varint field.
func (b *protoBuf) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	us := make([]uint64, len(vs))
	for i, v := range vs {
		us[i] = uint64(v)
	}
	b.packedUint64s(field, us)
}
