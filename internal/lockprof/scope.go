package lockprof

// The lockscope integration: this file installs the per-site counter
// feed the time-series sampler differences (lockscope cannot import
// lockprof — lockprof serves its endpoints) and implements the
// /debug/lockscope/* handlers registered in server.go.

import (
	"encoding/json"
	"net/http"
	"strconv"

	"thinlock/internal/lockscope"
)

// init installs the profiler as lockscope's per-site counter source.
// The feed reads the globally installed profiler at sampling time, so
// it is safe to install unconditionally: with the profiler disabled it
// returns nil and the sampler's site timelines simply stay empty.
func init() {
	lockscope.SetSiteSource(func() []lockscope.SiteCount {
		p := Active()
		if p == nil {
			return nil
		}
		snap := p.Snapshot()
		out := make([]lockscope.SiteCount, 0, len(snap.Sites))
		for _, st := range snap.Sites {
			out = append(out, lockscope.SiteCount{
				Label:       st.Label,
				Kind:        st.Kind,
				SlowEntries: st.SlowEntries,
				CASFailures: st.CASFailures,
				ParkNs:      st.ParkNs,
				DelayNs:     st.DelayNs,
			})
		}
		return out
	})
}

// activeScope answers the install check for the lockscope endpoints,
// writing the 503 itself when the sampler is off.
func activeScope(w http.ResponseWriter) *lockscope.Scope {
	sc := lockscope.Active()
	if sc == nil {
		http.Error(w, "lockscope disabled", http.StatusServiceUnavailable)
	}
	return sc
}

func serveScopeSeries(w http.ResponseWriter, r *http.Request) {
	sc := activeScope(w)
	if sc == nil {
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	series := sc.Series(n)
	switch r.URL.Query().Get("format") {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_ = series.WriteCSV(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = series.WriteJSON(w)
	default:
		http.Error(w, "unknown format (want json or csv)", http.StatusBadRequest)
	}
}

// serveScopeStream is the live feed: one server-sent event per
// published window ("sample"), plus one per fired anomaly ("anomaly"),
// until the client disconnects. A subscriber that stalls misses
// windows rather than stalling the sampler, so the stream is
// best-effort by construction.
func serveScopeStream(w http.ResponseWriter, r *http.Request) {
	sc := activeScope(w)
	if sc == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	updates, cancel := sc.Subscribe()
	defer cancel()
	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write([]byte("event: " + event + "\ndata: " + string(data) + "\n\n")); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case u, open := <-updates:
			if !open {
				return
			}
			if !emit("sample", u.Sample) {
				return
			}
			for _, a := range u.Anomalies {
				if !emit("anomaly", a) {
					return
				}
			}
		}
	}
}

func serveScopeDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/lockscope/" {
		http.NotFound(w, r)
		return
	}
	// The dashboard itself is static and served even while the sampler
	// is disabled — it reports that state in-page and recovers live the
	// moment lockscope is enabled, which beats a bare 503 for a page a
	// human has open in a tab.
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(lockscope.DashboardHTML))
}
