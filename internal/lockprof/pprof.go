package lockprof

import (
	"compress/gzip"
	"io"
)

// WritePprof writes the snapshot as a gzip-compressed pprof
// profile.proto contention profile, the same shape as Go's runtime
// mutex profile: two sample values per lock site —
//
//	contentions/count  (sampled slow-path entries)
//	delay/nanoseconds  (accumulated slow-path latency)
//
// — with each site's symbolized stack as the sample's location chain,
// leaf first. VM sites become a single synthetic frame whose filename
// is "<minijava>" and whose line is the bytecode pc. The profile's
// period records the sampling interval so pprof tooling can scale
// counts. The output is accepted by `go tool pprof`.
func (s *Snapshot) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(s.marshalPprof()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// pprof profile.proto field numbers (github.com/google/pprof).
const (
	profSampleType   = 1  // repeated ValueType
	profSample       = 2  // repeated Sample
	profMapping      = 3  // repeated Mapping
	profLocation     = 4  // repeated Location
	profFunction     = 5  // repeated Function
	profStringTable  = 6  // repeated string
	profTimeNanos    = 9  // int64
	profDurationNano = 10 // int64
	profPeriodType   = 11 // ValueType
	profPeriod       = 12 // int64

	vtType = 1 // ValueType.type (string index)
	vtUnit = 2 // ValueType.unit (string index)

	sampleLocationID = 1 // Sample.location_id, packed uint64
	sampleValue      = 2 // Sample.value, packed int64

	mapID          = 1 // Mapping.id
	mapMemoryStart = 2
	mapMemoryLimit = 3
	mapFilename    = 5 // string index

	locID        = 1 // Location.id
	locMappingID = 2
	locAddress   = 3
	locLine      = 4 // repeated Line

	lineFunctionID = 1
	lineLine       = 2

	funcID         = 1
	funcName       = 2 // string index
	funcSystemName = 3 // string index
	funcFilename   = 4 // string index
	funcStartLine  = 5
)

// marshalPprof encodes the uncompressed profile message.
func (s *Snapshot) marshalPprof() []byte {
	var b protoBuf

	// String table: index 0 must be "".
	strings := []string{""}
	strIndex := map[string]int64{"": 0}
	str := func(v string) int64 {
		if i, ok := strIndex[v]; ok {
			return i
		}
		i := int64(len(strings))
		strings = append(strings, v)
		strIndex[v] = i
		return i
	}

	contentions := str("contentions")
	count := str("count")
	delay := str("delay")
	nanoseconds := str("nanoseconds")

	// sample_type: contentions/count, delay/nanoseconds.
	for _, vt := range [][2]int64{{contentions, count}, {delay, nanoseconds}} {
		vt := vt
		b.messageField(profSampleType, func(m *protoBuf) {
			m.int64Field(vtType, vt[0])
			m.int64Field(vtUnit, vt[1])
		})
	}

	// Functions and locations are deduplicated across sites by
	// (name, filename, line). Location addresses are synthetic (pprof
	// requires them only to be consistent), carved from a fake mapping.
	type funcKey struct {
		name, file string
	}
	type locKey struct {
		fn   funcKey
		line int
	}
	funcIDs := map[funcKey]uint64{}
	locIDs := map[locKey]uint64{}
	var funcs []funcKey
	var locs []locKey

	funcOf := func(name, file string) uint64 {
		k := funcKey{name, file}
		if id, ok := funcIDs[k]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcIDs[k] = id
		funcs = append(funcs, k)
		return id
	}
	locOf := func(name, file string, line int) uint64 {
		k := locKey{funcKey{name, file}, line}
		if id, ok := locIDs[k]; ok {
			return id
		}
		funcOf(name, file)
		id := uint64(len(locs) + 1)
		locIDs[k] = id
		locs = append(locs, k)
		return id
	}

	// Samples: one per site with nonzero counts.
	for _, st := range s.Sites {
		if st.SlowEntries == 0 && st.DelayNs == 0 {
			continue
		}
		var locationIDs []uint64
		for _, f := range st.Frames {
			locationIDs = append(locationIDs, locOf(f.Func, f.File, f.Line))
		}
		if len(locationIDs) == 0 {
			locationIDs = append(locationIDs, locOf("(unknown site)", "", 0))
		}
		values := []int64{int64(st.SlowEntries), int64(st.DelayNs)}
		b.messageField(profSample, func(m *protoBuf) {
			m.packedUint64s(sampleLocationID, locationIDs)
			m.packedInt64s(sampleValue, values)
		})
	}

	// One synthetic mapping covering the fake address space.
	const mappingBase = 0x1000
	b.messageField(profMapping, func(m *protoBuf) {
		m.uint64Field(mapID, 1)
		m.uint64Field(mapMemoryStart, mappingBase)
		m.uint64Field(mapMemoryLimit, mappingBase+uint64(len(locs)+1))
		m.int64Field(mapFilename, str("thinlock"))
	})

	for i, k := range locs {
		id := uint64(i + 1)
		k := k
		b.messageField(profLocation, func(m *protoBuf) {
			m.uint64Field(locID, id)
			m.uint64Field(locMappingID, 1)
			m.uint64Field(locAddress, mappingBase+id)
			m.messageField(locLine, func(l *protoBuf) {
				l.uint64Field(lineFunctionID, funcIDs[k.fn])
				l.int64Field(lineLine, int64(k.line))
			})
		})
	}

	for i, k := range funcs {
		id := uint64(i + 1)
		k := k
		b.messageField(profFunction, func(m *protoBuf) {
			m.uint64Field(funcID, id)
			m.int64Field(funcName, str(k.name))
			m.int64Field(funcSystemName, str(k.name))
			m.int64Field(funcFilename, str(k.file))
		})
	}

	for _, v := range strings {
		b.bytesField(profStringTable, []byte(v))
	}

	b.int64Field(profDurationNano, s.DurationNs)
	b.messageField(profPeriodType, func(m *protoBuf) {
		m.int64Field(vtType, contentions)
		m.int64Field(vtUnit, count)
	})
	b.int64Field(profPeriod, int64(s.SampleEvery))

	return b.data
}
