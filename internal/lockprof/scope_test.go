package lockprof_test

// Endpoint contract tests for the /debug/lockscope routes and the
// route-table index: the index page is generated from the same table
// the mux registers from, so the two cannot drift.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thinlock/internal/lockprof"
	"thinlock/internal/lockscope"
	"thinlock/internal/telemetry"
)

// TestIndexListsEveryRegisteredRoute asserts the satellite contract:
// every pattern in the registration table appears on the generated
// index page.
func TestIndexListsEveryRegisteredRoute(t *testing.T) {
	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)
	code, body, _ := get(t, srv, "/")
	if code != 200 {
		t.Fatalf("/ = %d, want 200", code)
	}
	routes := lockprof.Routes()
	if len(routes) < 11 {
		t.Fatalf("route table lists %d routes, want the full endpoint set", len(routes))
	}
	for _, rt := range routes {
		if !strings.Contains(body, rt.Pattern) {
			t.Errorf("index page missing registered route %q:\n%s", rt.Pattern, body)
		}
		if rt.Doc == "" {
			t.Errorf("route %q has no doc line", rt.Pattern)
		}
		if !strings.Contains(body, rt.Doc) {
			t.Errorf("index page missing doc for %q", rt.Pattern)
		}
	}
}

// newScopeFixture installs telemetry + lockscope (manual sampling) and
// a server, and publishes two windows with slow-path activity. Not
// parallel: owns the global registrations.
func newScopeFixture(t *testing.T) (*httptest.Server, *lockscope.Scope) {
	t.Helper()
	m := telemetry.Enable(telemetry.New())
	t.Cleanup(telemetry.Disable)
	sc := lockscope.Enable(lockscope.New(lockscope.Config{}))
	t.Cleanup(lockscope.Disable)
	m.Add(nil, telemetry.CtrSlowPathEntries, 100)
	m.Add(nil, telemetry.CtrCASFailures, 10)
	sc.ForceSample()
	m.Add(nil, telemetry.CtrSlowPathEntries, 50)
	sc.ForceSample()
	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)
	return srv, sc
}

// Not parallel: owns the global telemetry/lockscope registrations.
func TestScopeSeriesEndpoint(t *testing.T) {
	srv, _ := newScopeFixture(t)

	code, body, ct := get(t, srv, "/debug/lockscope/series")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/lockscope/series = %d (%s), want 200 JSON", code, ct)
	}
	var series lockscope.Series
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("series is not valid JSON: %v", err)
	}
	if len(series.Samples) != 2 || series.Samples[0].SlowPerSec <= 0 {
		t.Errorf("series = %d samples (first slow/s %v), want 2 with activity",
			len(series.Samples), series.Samples[0].SlowPerSec)
	}

	// ?n= limits to the newest windows.
	_, body, _ = get(t, srv, "/debug/lockscope/series?n=1")
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Samples) != 1 || series.Samples[0].Index != 1 {
		t.Errorf("series?n=1 = %+v, want just window 1", series.Samples)
	}

	// CSV format: fixed header, one row per sample.
	code, body, ct = get(t, srv, "/debug/lockscope/series?format=csv")
	if code != 200 || !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("series?format=csv = %d (%s), want 200 text/csv", code, ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "index,at_ns,window_ns,slow_per_sec") {
		t.Errorf("csv = %d lines with header %q, want header + 2 rows", len(lines), lines[0])
	}

	if code, _, _ := get(t, srv, "/debug/lockscope/series?format=yaml"); code != 400 {
		t.Errorf("series?format=yaml = %d, want 400", code)
	}
}

// Not parallel: owns the global telemetry/lockscope registrations.
func TestScopeStreamDeliversSSE(t *testing.T) {
	srv, sc := newScopeFixture(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/debug/lockscope/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("stream = %d (%s), want 200 text/event-stream",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	// Publish two windows while the stream is attached; each must arrive
	// as an SSE frame whose data line carries the sample JSON.
	go func() {
		for i := 0; i < 2; i++ {
			time.Sleep(10 * time.Millisecond)
			sc.ForceSample()
		}
	}()
	scanner := bufio.NewScanner(resp.Body)
	var events, datas int
	for scanner.Scan() && datas < 2 {
		line := scanner.Text()
		if line == "event: sample" {
			events++
		}
		if strings.HasPrefix(line, "data: ") {
			datas++
			var sm lockscope.Sample
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sm); err != nil {
				t.Errorf("SSE data is not a sample: %v (%q)", err, line)
			}
		}
	}
	if events < 2 || datas < 2 {
		t.Errorf("stream delivered %d sample events / %d data frames, want >=2 each", events, datas)
	}
}

// Not parallel: owns the global telemetry/lockscope registrations.
func TestScopeDashboard(t *testing.T) {
	srv, _ := newScopeFixture(t)
	code, body, ct := get(t, srv, "/debug/lockscope/")
	if code != 200 || !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard = %d (%s), want 200 text/html", code, ct)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "lockscope", "/debug/lockscope/series", "/debug/lockscope/stream",
		"prefers-color-scheme", // dark mode is selected, not an automatic flip
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if code, _, _ := get(t, srv, "/debug/lockscope/nonsense"); code != 404 {
		t.Errorf("dashboard subpath = %d, want 404", code)
	}
}

// Not parallel: owns the global lockscope registration (deliberately none).
func TestScopeEndpointsAnswer503WhenDisabled(t *testing.T) {
	lockscope.Disable()
	srv := httptest.NewServer(lockprof.Handler())
	t.Cleanup(srv.Close)
	for _, path := range []string{"/debug/lockscope/series", "/debug/lockscope/stream"} {
		if code, body, _ := get(t, srv, path); code != 503 || !strings.Contains(body, "lockscope disabled") {
			t.Errorf("%s with lockscope disabled = %d, want 503", path, code)
		}
	}
	// The dashboard stays up (it reports the disabled state in-page).
	if code, _, _ := get(t, srv, "/debug/lockscope/"); code != 200 {
		t.Errorf("dashboard with lockscope disabled = %d, want 200", code)
	}
}

// TestSiteSourceFeedsProfilerCounts exercises the init-installed
// SiteSource: with the profiler enabled and a contended site recorded,
// a lockscope window attributes the activity to that site. Not
// parallel: owns the global registrations.
func TestSiteSourceFeedsProfilerCounts(t *testing.T) {
	telemetry.Enable(telemetry.New())
	t.Cleanup(telemetry.Disable)
	lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
	t.Cleanup(lockprof.Disable)
	sc := lockscope.Enable(lockscope.New(lockscope.Config{}))
	t.Cleanup(lockscope.Disable)

	f := newLockFixture(t)
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o) // nested: slow path, so lockprof records the site
	if err := f.l.Unlock(f.th, f.o); err != nil {
		t.Fatal(err)
	}
	if err := f.l.Unlock(f.th, f.o); err != nil {
		t.Fatal(err)
	}
	s := sc.ForceSample()
	if len(s.Sites) == 0 {
		t.Fatal("window has no site timeline; SiteSource feed not wired")
	}
	if s.Sites[0].SlowEntries == 0 {
		t.Errorf("top site = %+v, want nonzero slow entries", s.Sites[0])
	}
}
