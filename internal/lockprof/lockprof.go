// Package lockprof is a sampled, site-attributed lock contention
// profiler layered on the same hook discipline as internal/telemetry.
//
// Where telemetry answers "how much" (global counters and histograms),
// lockprof answers "where" and "which": every sampled slow-path
// acquisition is attributed to a *lock site* — the VM method and
// bytecode pc for interpreter-driven acquisitions (published in the
// acting thread by internal/vm), or the Go caller PC chain captured
// with runtime.Callers for direct library users — and to the lock
// *object* itself. The paper's central distributional claim (a few hot
// objects and sites dominate lock behaviour, Figures 4/5) becomes
// directly observable: per-site and per-object slow-path entries, CAS
// failures, inflations by cause, park time, acquisition delay and hold
// time, with top-N reports and pprof/Prometheus/JSON exports.
//
// The overhead contract matches telemetry's:
//
//   - the uncontended lock/unlock fast path carries no lockprof hook at
//     all; with the profiler disabled every hook site is one atomic
//     pointer load, a compare and a not-taken branch, and allocates
//     nothing (enforced by overhead_test.go);
//   - hooks live only on slow paths. Stack capture — the expensive part
//     — happens only on sampled slow-path entries, rate-limited by a
//     per-thread counter (Config.SampleEvery);
//   - all bookkeeping is lock-free: records live in fixed-size sharded
//     tables of atomic pointers (see table.go), so a hook can never
//     block behind another thread's bookkeeping, and the profiler's
//     memory is bounded no matter how many sites or objects appear.
package lockprof

import (
	"sync/atomic"

	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// DefaultSampleEvery is the default sampling interval: one in N
// slow-path entries per thread captures a site. Slow-path entries
// include cheap nested acquisitions, so capturing every one would let
// runtime.Callers dominate nesting-heavy workloads; 1-in-8 keeps the
// capture off the common case while a contended run still lands
// hundreds of samples per second.
const DefaultSampleEvery = 8

// Config configures a Profiler.
type Config struct {
	// SampleEvery samples one in N slow-path entries per thread
	// (1 samples every entry; 0 means DefaultSampleEvery).
	SampleEvery int
}

// numSlots is the size of the per-thread attribution slot array.
// Thread indices are dense from 1, so any realistic run maps threads
// to distinct slots; past numSlots concurrent threads, slots alias and
// attribution may mix between the aliased threads (all slot fields are
// atomics, so aliasing is benign for memory safety).
const numSlots = 4096

// threadSlot carries one thread's in-flight attribution state: the
// sampled site/object of the slow-path acquisition currently executing,
// and the most recent sampled acquisition still held (for hold-time
// measurement on the next slow-path unlock).
type threadSlot struct {
	tick atomic.Uint32 // sampling counter

	site atomic.Pointer[SiteRecord]   // in-flight sampled site
	obj  atomic.Pointer[ObjectRecord] // in-flight sampled object

	heldID   atomic.Uint64 // object id of the held sampled acquisition
	heldSite atomic.Pointer[SiteRecord]
	heldObj  atomic.Pointer[ObjectRecord]
	acqNs    atomic.Int64 // when the held acquisition completed

	_ [40]byte // pad to 128 bytes so neighbouring threads do not share lines
}

// Profiler is one set of contention-profile tables. Create with New,
// install globally with Enable; all methods are safe for concurrent
// use.
type Profiler struct {
	sampleEvery uint32
	startNs     int64 // telemetry.Now at creation, for profile duration

	sites siteTable
	objs  objTable
	slots [numSlots]threadSlot
}

// New returns an empty Profiler with the given configuration.
func New(cfg Config) *Profiler {
	se := cfg.SampleEvery
	if se <= 0 {
		se = DefaultSampleEvery
	}
	return &Profiler{
		sampleEvery: uint32(se),
		startNs:     telemetry.Now(),
	}
}

// SampleEvery returns the configured sampling interval.
func (p *Profiler) SampleEvery() int { return int(p.sampleEvery) }

// slot returns the acting thread's attribution slot (slot 0 for nil).
func (p *Profiler) slot(t *threading.Thread) *threadSlot {
	if t == nil {
		return &p.slots[0]
	}
	return &p.slots[int(t.Index())&(numSlots-1)]
}

// SlowPathEnter is called at slow-path entry, before the acquisition
// state machine runs. One in SampleEvery entries per thread is sampled:
// the site is resolved (VM frame if the thread published one, Go caller
// chain otherwise), the site and object records are charged one slow
// entry, and the records are parked in the thread's slot so the other
// hooks (CASFailure, Park, Inflation, SlowPathExit) can attribute to
// them without re-capturing.
func (p *Profiler) SlowPathEnter(t *threading.Thread, o *object.Object) {
	s := p.slot(t)
	if n := s.tick.Add(1); p.sampleEvery > 1 && n%p.sampleEvery != 0 {
		return
	}
	var k SiteKey
	if t != nil {
		if method, pc, ok := t.Frame(); ok {
			k.VMMethod, k.VMPC = method, pc
		}
	}
	if !k.IsVM() {
		captureGoSite(&k, 1)
	}
	site := p.sites.get(k)
	obj := p.objs.get(o.ID(), o.Class())
	if site != nil {
		site.SlowEntries.Add(1)
	}
	if obj != nil {
		obj.SlowEntries.Add(1)
	}
	s.site.Store(site)
	s.obj.Store(obj)
}

// SlowPathExit is called when the slow-path acquisition completes,
// with the total slow-path latency. It charges the delay to the sampled
// records and rolls the sample over into held state so the next
// slow-path unlock of o by this thread can record hold time.
func (p *Profiler) SlowPathExit(t *threading.Thread, o *object.Object, delayNs int64) {
	s := p.slot(t)
	site := s.site.Load()
	obj := s.obj.Load()
	if site == nil && obj == nil {
		return
	}
	s.site.Store(nil)
	s.obj.Store(nil)
	if delayNs < 0 {
		delayNs = 0
	}
	if site != nil {
		site.DelayNs.Add(uint64(delayNs))
	}
	if obj != nil {
		obj.DelayNs.Add(uint64(delayNs))
	}
	s.heldSite.Store(site)
	s.heldObj.Store(obj)
	s.acqNs.Store(telemetry.Now())
	s.heldID.Store(o.ID())
}

// CASFailure attributes one lock-word CAS retry to the in-flight
// sampled site, if any.
func (p *Profiler) CASFailure(t *threading.Thread) {
	if site := p.slot(t).site.Load(); site != nil {
		site.CASFailures.Add(1)
	}
}

// Park attributes ns of parked (blocked) time to the in-flight sampled
// site and object, if any. Called from the queued-contention park and
// the monitor entry queue.
func (p *Profiler) Park(t *threading.Thread, ns int64) {
	if ns <= 0 {
		return
	}
	s := p.slot(t)
	if site := s.site.Load(); site != nil {
		site.ParkNs.Add(uint64(ns))
	}
	if obj := s.obj.Load(); obj != nil {
		obj.ParkNs.Add(uint64(ns))
	}
}

// Inflation records an inflation of o with the given cause. Inflations
// are rare and are the paper's key distributional event, so they are
// recorded unconditionally (not sampled): if no sampled site is in
// flight the site is captured here.
func (p *Profiler) Inflation(t *threading.Thread, o *object.Object, cause InflationCause) {
	if cause >= NumCauses {
		return
	}
	site := p.slot(t).site.Load()
	if site == nil {
		var k SiteKey
		if t != nil {
			if method, pc, ok := t.Frame(); ok {
				k.VMMethod, k.VMPC = method, pc
			}
		}
		if !k.IsVM() {
			captureGoSite(&k, 1)
		}
		site = p.sites.get(k)
	}
	if site != nil {
		site.Inflations[cause].Add(1)
	}
	if obj := p.objs.get(o.ID(), o.Class()); obj != nil {
		obj.Inflations.Add(1)
	}
}

// Revocation records a bias revocation of o with the given cause.
// Like inflations, revocations are rare protocol transitions and are
// recorded unconditionally; the acting thread is the one that triggered
// the revocation (the contender for CauseContention, the bias owner for
// CauseWait/CauseOverflow), so the captured site is where the
// reservation was torn down.
func (p *Profiler) Revocation(t *threading.Thread, o *object.Object, cause InflationCause) {
	if cause >= NumCauses {
		return
	}
	site := p.slot(t).site.Load()
	if site == nil {
		var k SiteKey
		if t != nil {
			if method, pc, ok := t.Frame(); ok {
				k.VMMethod, k.VMPC = method, pc
			}
		}
		if !k.IsVM() {
			captureGoSite(&k, 1)
		}
		site = p.sites.get(k)
	}
	if site != nil {
		site.Revocations[cause].Add(1)
	}
	if obj := p.objs.get(o.ID(), o.Class()); obj != nil {
		obj.Revocations.Add(1)
	}
}

// Deflation records a deflation of o: the final unlock found the fat
// monitor quiescent and turned it back into a thin lock. Deflations are
// rare protocol transitions like inflations and are recorded
// unconditionally; the acting thread is the releasing owner, so the
// captured site is where the lock went quiescent.
func (p *Profiler) Deflation(t *threading.Thread, o *object.Object) {
	site := p.slot(t).site.Load()
	if site == nil {
		var k SiteKey
		if t != nil {
			if method, pc, ok := t.Frame(); ok {
				k.VMMethod, k.VMPC = method, pc
			}
		}
		if !k.IsVM() {
			captureGoSite(&k, 1)
		}
		site = p.sites.get(k)
	}
	if site != nil {
		site.Deflations.Add(1)
	}
	if obj := p.objs.get(o.ID(), o.Class()); obj != nil {
		obj.Deflations.Add(1)
	}
}

// UnlockSlow is called from slow-path unlocks. If the thread's held
// sample matches o, the hold time (acquisition to this unlock) is
// charged to the sampled records and the held state cleared. Inflated
// locks always unlock through the slow path, so every sampled contended
// hold is measured; nested fat exits end the measurement at the first
// (not the final) release, which keeps the hook stateless — treat hold
// times as a lower bound under deep nesting.
func (p *Profiler) UnlockSlow(t *threading.Thread, o *object.Object) {
	s := p.slot(t)
	if s.heldID.Load() != o.ID() {
		return
	}
	s.heldID.Store(0)
	ns := telemetry.Now() - s.acqNs.Load()
	if ns < 0 {
		ns = 0
	}
	if site := s.heldSite.Swap(nil); site != nil {
		site.HoldNs.Add(uint64(ns))
	}
	if obj := s.heldObj.Swap(nil); obj != nil {
		obj.HoldNs.Add(uint64(ns))
	}
	// The measured hold also feeds the global hold-time distribution, so
	// windowed hold percentiles (lockscope) exist without per-site math.
	telemetry.Observe(t, telemetry.HistHoldNs, ns)
}

// Drops reports how many events the bounded tables discarded.
func (p *Profiler) Drops() (sites, objects uint64) {
	return p.sites.drops.Load(), p.objs.drops.Load()
}

// active is the globally installed Profiler the hook helpers feed.
var active atomic.Pointer[Profiler]

// Enable installs p as the global hook target (nil disables) and
// returns p.
func Enable(p *Profiler) *Profiler {
	active.Store(p)
	return p
}

// Disable uninstalls the global hook target.
func Disable() { active.Store(nil) }

// Active returns the installed Profiler, or nil when disabled. Slow
// paths that fire several hooks load it once.
func Active() *Profiler { return active.Load() }

// Enabled reports whether a global Profiler is installed.
//
//lockvet:noalloc
func Enabled() bool { return active.Load() != nil }

// CASFailure records a CAS retry on the installed Profiler; a no-op
// (one atomic load, one branch, no allocation) when disabled.
func CASFailure(t *threading.Thread) {
	if p := active.Load(); p != nil {
		p.CASFailure(t)
	}
}

// Inflation records an inflation on the installed Profiler; no-op when
// disabled.
func Inflation(t *threading.Thread, o *object.Object, cause InflationCause) {
	if p := active.Load(); p != nil {
		p.Inflation(t, o, cause)
	}
}

// Revocation records a bias revocation on the installed Profiler;
// no-op when disabled.
func Revocation(t *threading.Thread, o *object.Object, cause InflationCause) {
	if p := active.Load(); p != nil {
		p.Revocation(t, o, cause)
	}
}

// Deflation records a deflation on the installed Profiler; no-op when
// disabled.
func Deflation(t *threading.Thread, o *object.Object) {
	if p := active.Load(); p != nil {
		p.Deflation(t, o)
	}
}

// Park records parked time on the installed Profiler; no-op when
// disabled.
func Park(t *threading.Thread, ns int64) {
	if p := active.Load(); p != nil {
		p.Park(t, ns)
	}
}

// UnlockSlow records a slow-path unlock on the installed Profiler;
// no-op when disabled.
func UnlockSlow(t *threading.Thread, o *object.Object) {
	if p := active.Load(); p != nil {
		p.UnlockSlow(t, o)
	}
}
