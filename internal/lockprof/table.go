package lockprof

import "sync/atomic"

// The profiler's per-site and per-object tables are fixed-size,
// open-addressed hash tables of atomic record pointers, split into
// shards selected by the key hash. Insertion is a CAS of an empty slot;
// readers follow the published pointer. There are no locks anywhere on
// the record path, so a slow-path hook can never block behind another
// thread's bookkeeping. Capacity is bounded: when a shard's probe
// window is exhausted the event is counted in a drop counter instead of
// growing the table (a profiler must never amplify the memory of the
// system it watches).

const (
	// numShards splits each table; the shard is chosen by the top hash
	// bits so probe sequences in different shards never interleave.
	numShards = 16
	// siteSlotsPerShard bounds distinct sites per shard (total 4096).
	siteSlotsPerShard = 256
	// objSlotsPerShard bounds distinct objects per shard (total 8192).
	objSlotsPerShard = 512
	// maxProbe is the linear probe window before an insert gives up.
	maxProbe = 64
)

// siteShard is one shard of the site table.
type siteShard struct {
	slots [siteSlotsPerShard]atomic.Pointer[SiteRecord]
}

// siteTable maps SiteKeys to records.
type siteTable struct {
	shards [numShards]siteShard
	drops  atomic.Uint64
}

// get returns the record for k, inserting a fresh one if needed.
// Returns nil (and counts a drop) when the shard's probe window is
// full. Safe for concurrent use; the insert allocates once per site.
func (tb *siteTable) get(k SiteKey) *SiteRecord {
	h := k.hash()
	sh := &tb.shards[(h>>60)&(numShards-1)]
	idx := h & (siteSlotsPerShard - 1)
	for i := uint64(0); i < maxProbe; i++ {
		slot := &sh.slots[(idx+i)&(siteSlotsPerShard-1)]
		r := slot.Load()
		if r == nil {
			nr := &SiteRecord{Key: k}
			if slot.CompareAndSwap(nil, nr) {
				return nr
			}
			r = slot.Load()
		}
		if r.Key == k {
			return r
		}
	}
	tb.drops.Add(1)
	return nil
}

// snapshot collects every published record.
func (tb *siteTable) snapshot() []*SiteRecord {
	var out []*SiteRecord
	for s := range tb.shards {
		for i := range tb.shards[s].slots {
			if r := tb.shards[s].slots[i].Load(); r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// objShard is one shard of the object table.
type objShard struct {
	slots [objSlotsPerShard]atomic.Pointer[ObjectRecord]
}

// objTable maps object ids to records.
type objTable struct {
	shards [numShards]objShard
	drops  atomic.Uint64
}

// objHash mixes an object id (a SplitMix64 finalizer round).
func objHash(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	id ^= id >> 31
	return id
}

// get returns the record for object id, inserting one (recording class)
// if needed; nil when the probe window is full.
func (tb *objTable) get(id uint64, class string) *ObjectRecord {
	h := objHash(id)
	sh := &tb.shards[(h>>60)&(numShards-1)]
	idx := h & (objSlotsPerShard - 1)
	for i := uint64(0); i < maxProbe; i++ {
		slot := &sh.slots[(idx+i)&(objSlotsPerShard-1)]
		r := slot.Load()
		if r == nil {
			nr := &ObjectRecord{ID: id, Class: class}
			if slot.CompareAndSwap(nil, nr) {
				return nr
			}
			r = slot.Load()
		}
		if r.ID == id {
			return r
		}
	}
	tb.drops.Add(1)
	return nil
}

// snapshot collects every published record.
func (tb *objTable) snapshot() []*ObjectRecord {
	var out []*ObjectRecord
	for s := range tb.shards {
		for i := range tb.shards[s].slots {
			if r := tb.shards[s].slots[i].Load(); r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}
