package lockprof

import (
	"fmt"
	"runtime"
	"strings"
)

// MaxStackDepth is how many Go caller PCs a site key retains. Deep
// enough to reach through the lock implementation into the workload
// frame that actually requested the lock.
const MaxStackDepth = 8

// SiteKey identifies one lock-acquisition site. Exactly one of the two
// encodings is populated:
//
//   - a VM site (interpreter-driven acquisition): the executing method's
//     qualified name plus the bytecode pc of the monitorenter (or -1 for
//     a synchronized-method prologue), taken from the thread's published
//     frame;
//   - a Go site (direct library use): the caller PC chain captured with
//     runtime.Callers on the slow path.
//
// The key is comparable, so records can be deduplicated with ==.
type SiteKey struct {
	// VMMethod is the interpreter method ("Class.method"), or "" for a
	// Go site.
	VMMethod string
	// VMPC is the bytecode pc of the acquisition (-1 marks a
	// synchronized-method prologue).
	VMPC int32
	// PCs is the Go caller chain, leaf first; entries past Depth are
	// zero.
	PCs [MaxStackDepth]uintptr
	// Depth is the number of valid PCs.
	Depth uint8
}

// IsVM reports whether the key is an interpreter site.
func (k SiteKey) IsVM() bool { return k.VMMethod != "" }

// hash returns a 64-bit FNV-1a hash of the key.
func (k SiteKey) hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	for i := 0; i < len(k.VMMethod); i++ {
		h ^= uint64(k.VMMethod[i])
		h *= prime
	}
	mix(uint64(uint32(k.VMPC)))
	for i := uint8(0); i < k.Depth; i++ {
		mix(uint64(k.PCs[i]))
	}
	return h
}

// captureGoSite fills k with the caller PC chain. skip counts frames to
// drop on top of captureGoSite itself (runtime.Callers semantics). The
// buffer is caller-provided so the capture allocates nothing.
func captureGoSite(k *SiteKey, skip int) {
	n := runtime.Callers(skip+2, k.PCs[:])
	k.Depth = uint8(n)
}

// Frame is one symbolized stack frame of a site.
type Frame struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// internalFramePrefixes name the lock-machinery packages whose frames
// are skipped when choosing a site's display label, so the label lands
// on the workload frame that requested the lock.
var internalFramePrefixes = []string{
	"thinlock/internal/lockprof",
	"thinlock/internal/core",
	"thinlock/internal/monitor",
	"thinlock/internal/monitorcache",
	"thinlock/internal/hotlocks",
	"thinlock/internal/lockapi",
	// The jcl synchronized helper is pure lock plumbing; the class-library
	// methods above it (Vector.AddElement, ...) are the meaningful sites.
	"thinlock/internal/jcl.(*Context).synchronized",
	"thinlock/internal/locktrace",
	"thinlock/internal/lockstat",
	"thinlock/internal/arch",
	"runtime",
}

func isInternalFrame(fn string) bool {
	for _, p := range internalFramePrefixes {
		if strings.HasPrefix(fn, p+".") || fn == p {
			return true
		}
	}
	return false
}

// symbolize resolves a key into human-readable frames. VM sites yield a
// single synthetic frame; Go sites are resolved through the runtime's
// symbol tables (inline expansion included).
func (k SiteKey) symbolize() []Frame {
	if k.IsVM() {
		return []Frame{{
			Func: k.VMMethod,
			File: "<minijava>",
			Line: int(k.VMPC),
		}}
	}
	frames := runtime.CallersFrames(k.PCs[:k.Depth])
	var out []Frame
	for {
		f, more := frames.Next()
		if f.Function != "" {
			out = append(out, Frame{Func: f.Function, File: f.File, Line: f.Line})
		}
		if !more {
			break
		}
	}
	return out
}

// label picks the display name for a symbolized site: the first frame
// that is not lock machinery, or the leaf frame as a fallback.
func label(frames []Frame) string {
	for _, f := range frames {
		if !isInternalFrame(f.Func) {
			return fmt.Sprintf("%s (%s:%d)", f.Func, shortFile(f.File), f.Line)
		}
	}
	if len(frames) > 0 {
		f := frames[0]
		return fmt.Sprintf("%s (%s:%d)", f.Func, shortFile(f.File), f.Line)
	}
	return "(unknown site)"
}

// shortFile trims a file path to its last two components.
func shortFile(path string) string {
	short := path
	slashes := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			slashes++
			if slashes == 2 {
				short = path[i+1:]
				break
			}
		}
	}
	return short
}
