package lockprof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"thinlock/internal/telemetry"
)

// SiteStat is one site's immutable snapshot, symbolized for display.
type SiteStat struct {
	// Label names the site: the first non-lock-machinery frame for Go
	// sites, or "Method@pc" for interpreter sites.
	Label string `json:"label"`
	// Kind is "vm" or "go".
	Kind string `json:"kind"`
	// Frames is the symbolized stack, leaf first.
	Frames []Frame `json:"frames"`

	SlowEntries uint64            `json:"slow_entries"`
	CASFailures uint64            `json:"cas_failures"`
	Inflations  map[string]uint64 `json:"inflations,omitempty"`
	Revocations map[string]uint64 `json:"revocations,omitempty"`
	Deflations  uint64            `json:"deflations,omitempty"`
	ParkNs      uint64            `json:"park_ns"`
	DelayNs     uint64            `json:"delay_ns"`
	HoldNs      uint64            `json:"hold_ns"`

	key SiteKey
}

// InflationTotal sums the per-cause inflation counts.
func (s SiteStat) InflationTotal() uint64 {
	var n uint64
	for _, v := range s.Inflations {
		n += v
	}
	return n
}

// RevocationTotal sums the per-cause bias revocation counts.
func (s SiteStat) RevocationTotal() uint64 {
	var n uint64
	for _, v := range s.Revocations {
		n += v
	}
	return n
}

// ObjectStat is one lock object's immutable snapshot.
type ObjectStat struct {
	ID    uint64 `json:"id"`
	Class string `json:"class"`

	SlowEntries uint64 `json:"slow_entries"`
	Inflations  uint64 `json:"inflations"`
	Revocations uint64 `json:"revocations,omitempty"`
	Deflations  uint64 `json:"deflations,omitempty"`
	ParkNs      uint64 `json:"park_ns"`
	DelayNs     uint64 `json:"delay_ns"`
	HoldNs      uint64 `json:"hold_ns"`
}

// Snapshot is a point-in-time copy of the profiler's tables, ordered by
// delay (sites) and id (objects). Counters are read with atomic loads
// but not as one consistent cut; totals may straddle in-flight events.
type Snapshot struct {
	// SampleEvery is the sampling interval the counts were taken at;
	// multiply sampled quantities by it to estimate true totals.
	SampleEvery int `json:"sample_every"`
	// DurationNs is how long the profiler had been installed.
	DurationNs int64 `json:"duration_ns"`
	// SiteDrops/ObjectDrops count events discarded by the bounded tables.
	SiteDrops   uint64 `json:"site_drops"`
	ObjectDrops uint64 `json:"object_drops"`

	Sites   []SiteStat   `json:"sites"`
	Objects []ObjectStat `json:"objects"`
}

// Snapshot captures the profiler's current tables.
func (p *Profiler) Snapshot() *Snapshot {
	snap := &Snapshot{
		SampleEvery: int(p.sampleEvery),
		DurationNs:  telemetry.Now() - p.startNs,
	}
	snap.SiteDrops, snap.ObjectDrops = p.Drops()

	for _, r := range p.sites.snapshot() {
		frames := r.Key.symbolize()
		st := SiteStat{
			Label:       label(frames),
			Kind:        "go",
			Frames:      frames,
			SlowEntries: r.SlowEntries.Load(),
			CASFailures: r.CASFailures.Load(),
			Deflations:  r.Deflations.Load(),
			ParkNs:      r.ParkNs.Load(),
			DelayNs:     r.DelayNs.Load(),
			HoldNs:      r.HoldNs.Load(),
			key:         r.Key,
		}
		if r.Key.IsVM() {
			st.Kind = "vm"
			st.Label = fmt.Sprintf("%s@%d", r.Key.VMMethod, r.Key.VMPC)
			if r.Key.VMPC < 0 {
				st.Label = r.Key.VMMethod + "@sync-entry"
			}
		}
		for c := InflationCause(0); c < NumCauses; c++ {
			if n := r.Inflations[c].Load(); n > 0 {
				if st.Inflations == nil {
					st.Inflations = make(map[string]uint64, int(NumCauses))
				}
				st.Inflations[c.String()] = n
			}
			if n := r.Revocations[c].Load(); n > 0 {
				if st.Revocations == nil {
					st.Revocations = make(map[string]uint64, int(NumCauses))
				}
				st.Revocations[c.String()] = n
			}
		}
		snap.Sites = append(snap.Sites, st)
	}
	snap.Sites = mergeSitesByLabel(snap.Sites)
	sort.Slice(snap.Sites, func(i, j int) bool {
		a, b := &snap.Sites[i], &snap.Sites[j]
		if a.DelayNs != b.DelayNs {
			return a.DelayNs > b.DelayNs
		}
		if a.SlowEntries != b.SlowEntries {
			return a.SlowEntries > b.SlowEntries
		}
		return a.Label < b.Label
	})

	for _, r := range p.objs.snapshot() {
		snap.Objects = append(snap.Objects, ObjectStat{
			ID:          r.ID,
			Class:       r.Class,
			SlowEntries: r.SlowEntries.Load(),
			Inflations:  r.Inflations.Load(),
			Revocations: r.Revocations.Load(),
			Deflations:  r.Deflations.Load(),
			ParkNs:      r.ParkNs.Load(),
			DelayNs:     r.DelayNs.Load(),
			HoldNs:      r.HoldNs.Load(),
		})
	}
	sort.Slice(snap.Objects, func(i, j int) bool {
		a, b := &snap.Objects[i], &snap.Objects[j]
		if a.DelayNs != b.DelayNs {
			return a.DelayNs > b.DelayNs
		}
		if a.SlowEntries != b.SlowEntries {
			return a.SlowEntries > b.SlowEntries
		}
		return a.ID < b.ID
	})
	return snap
}

// mergeSitesByLabel folds records that display as the same site into
// one stat. The tables key records by exact PC chain, and the same
// logical site can yield several chains: a sampled slow-path entry and
// an unsampled inflation capture their stacks at different depths in
// the lock machinery, differing only in frames the label skips. Keeping
// them split would show one row carrying the slow entries and a twin
// carrying the inflations. The survivor keeps the frames of the record
// with the most slow entries (the stack users will want to see).
func mergeSitesByLabel(sites []SiteStat) []SiteStat {
	type labelKey struct {
		label, kind string
	}
	idx := make(map[labelKey]int, len(sites))
	out := sites[:0]
	for _, st := range sites {
		k := labelKey{st.Label, st.Kind}
		i, ok := idx[k]
		if !ok {
			idx[k] = len(out)
			out = append(out, st)
			continue
		}
		dst := &out[i]
		if st.SlowEntries > dst.SlowEntries {
			dst.Frames = st.Frames
			dst.key = st.key
		}
		dst.SlowEntries += st.SlowEntries
		dst.CASFailures += st.CASFailures
		dst.Deflations += st.Deflations
		dst.ParkNs += st.ParkNs
		dst.DelayNs += st.DelayNs
		dst.HoldNs += st.HoldNs
		for cause, n := range st.Inflations {
			if dst.Inflations == nil {
				dst.Inflations = make(map[string]uint64, int(NumCauses))
			}
			dst.Inflations[cause] += n
		}
		for cause, n := range st.Revocations {
			if dst.Revocations == nil {
				dst.Revocations = make(map[string]uint64, int(NumCauses))
			}
			dst.Revocations[cause] += n
		}
	}
	return out
}

// TopSites returns the n hottest sites by accumulated delay.
func (s *Snapshot) TopSites(n int) []SiteStat {
	if n <= 0 || n > len(s.Sites) {
		n = len(s.Sites)
	}
	return s.Sites[:n]
}

// TopObjects returns the n hottest objects by accumulated delay.
func (s *Snapshot) TopObjects(n int) []ObjectStat {
	if n <= 0 || n > len(s.Objects) {
		n = len(s.Objects)
	}
	return s.Objects[:n]
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTop writes a human-readable top-n hot-lock report: the hottest
// sites and objects with their contention dimensions.
func (s *Snapshot) WriteTop(w io.Writer, n int) error {
	sites := s.TopSites(n)
	objs := s.TopObjects(n)
	if _, err := fmt.Fprintf(w, "lockprof: %d sites, %d objects (sample 1/%d, %.3fs)\n",
		len(s.Sites), len(s.Objects), s.SampleEvery, float64(s.DurationNs)/1e9); err != nil {
		return err
	}
	if s.SiteDrops > 0 || s.ObjectDrops > 0 {
		if _, err := fmt.Fprintf(w, "  dropped: %d site events, %d object events (tables full)\n",
			s.SiteDrops, s.ObjectDrops); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nTop %d lock sites by delay:\n", len(sites)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %-10s %-8s %-12s %-12s %-12s  %s\n",
		"SLOWENTRY", "CASFAIL", "INFLATE", "DELAY", "PARK", "HOLD", "SITE"); err != nil {
		return err
	}
	for _, st := range sites {
		if _, err := fmt.Fprintf(w, "%-10d %-10d %-8d %-12s %-12s %-12s  %s\n",
			st.SlowEntries, st.CASFailures, st.InflationTotal(),
			fmtNs(st.DelayNs), fmtNs(st.ParkNs), fmtNs(st.HoldNs), st.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nTop %d lock objects by delay:\n", len(objs)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %-8s %-12s %-12s %-12s  %s\n",
		"SLOWENTRY", "INFLATE", "DELAY", "PARK", "HOLD", "OBJECT"); err != nil {
		return err
	}
	for _, o := range objs {
		if _, err := fmt.Fprintf(w, "%-10d %-8d %-12s %-12s %-12s  %s#%d\n",
			o.SlowEntries, o.Inflations,
			fmtNs(o.DelayNs), fmtNs(o.ParkNs), fmtNs(o.HoldNs), o.Class, o.ID); err != nil {
			return err
		}
	}
	return nil
}

// fmtNs renders a nanosecond total compactly.
func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format with site labels, under the shared thinlock_ prefix. Label
// values are escaped per the exposition format (see
// telemetry.EscapeLabelValue).
func (s *Snapshot) WritePrometheus(w io.Writer, topN int) error {
	sites := s.TopSites(topN)

	type metric struct {
		name, help string
		value      func(SiteStat) uint64
	}
	metrics := []metric{
		{"lockprof_slow_entries", "Sampled slow-path lock acquisitions by site.",
			func(st SiteStat) uint64 { return st.SlowEntries }},
		{"lockprof_cas_failures", "Lock-word CAS retries by site.",
			func(st SiteStat) uint64 { return st.CASFailures }},
		{"lockprof_delay_ns", "Slow-path acquisition delay by site (ns).",
			func(st SiteStat) uint64 { return st.DelayNs }},
		{"lockprof_park_ns", "Blocked (parked) time by site (ns).",
			func(st SiteStat) uint64 { return st.ParkNs }},
		{"lockprof_hold_ns", "Sampled lock hold time by site (ns).",
			func(st SiteStat) uint64 { return st.HoldNs }},
		{"lockprof_deflations", "Fat locks deflated back to thin by site.",
			func(st SiteStat) uint64 { return st.Deflations }},
	}
	for _, m := range metrics {
		name := telemetry.PromPrefix + m.name + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, m.help, name); err != nil {
			return err
		}
		for _, st := range sites {
			if _, err := fmt.Fprintf(w, "%s{site=\"%s\",kind=\"%s\"} %d\n",
				name, telemetry.EscapeLabelValue(st.Label), st.Kind, m.value(st)); err != nil {
				return err
			}
		}
	}

	name := telemetry.PromPrefix + "lockprof_inflations_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Lock inflations by site and cause.\n# TYPE %s counter\n", name, name); err != nil {
		return err
	}
	for _, st := range sites {
		for _, cc := range sortedCauses(st.Inflations) {
			if _, err := fmt.Fprintf(w, "%s{site=\"%s\",kind=\"%s\",cause=\"%s\"} %d\n",
				name, telemetry.EscapeLabelValue(st.Label), st.Kind, cc.cause, cc.count); err != nil {
				return err
			}
		}
	}

	name = telemetry.PromPrefix + "lockprof_revocations_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Bias revocations by site and cause.\n# TYPE %s counter\n", name, name); err != nil {
		return err
	}
	for _, st := range sites {
		for _, cc := range sortedCauses(st.Revocations) {
			if _, err := fmt.Fprintf(w, "%s{site=\"%s\",kind=\"%s\",cause=\"%s\"} %d\n",
				name, telemetry.EscapeLabelValue(st.Label), st.Kind, cc.cause, cc.count); err != nil {
				return err
			}
		}
	}

	for _, g := range []struct {
		name, help string
		value      uint64
	}{
		{"lockprof_sites", "Distinct lock sites observed.", uint64(len(s.Sites))},
		{"lockprof_objects", "Distinct lock objects observed.", uint64(len(s.Objects))},
		{"lockprof_dropped_events_total", "Events dropped by the bounded profiler tables.",
			s.SiteDrops + s.ObjectDrops},
	} {
		fq := telemetry.PromPrefix + g.name
		kind := "gauge"
		if len(fq) > len("_total") && fq[len(fq)-len("_total"):] == "_total" {
			kind = "counter"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", fq, g.help, fq, kind, fq, g.value); err != nil {
			return err
		}
	}
	return nil
}

type causeCount struct {
	cause string
	count uint64
}

// sortedCauses orders a cause map for deterministic output.
func sortedCauses(m map[string]uint64) []causeCount {
	out := make([]causeCount, 0, len(m))
	for c, n := range m {
		out = append(out, causeCount{c, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cause < out[j].cause })
	return out
}
