package lockstat

import (
	"strings"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

type fixture struct {
	r    *Recorder
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture() *fixture {
	return &fixture{
		r:    New(core.NewDefault()),
		heap: object.NewHeap(),
		reg:  threading.NewRegistry(),
	}
}

func (f *fixture) thread(t *testing.T) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestCountsFirstLocks(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	for i := 0; i < 10; i++ {
		o := f.heap.New("X")
		f.r.Lock(th, o)
		if err := f.r.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.r.Snapshot()
	if rep.TotalSyncs != 10 {
		t.Errorf("TotalSyncs = %d, want 10", rep.TotalSyncs)
	}
	if rep.ByDepth[0] != 10 {
		t.Errorf("ByDepth[0] = %d, want 10", rep.ByDepth[0])
	}
	if rep.SyncedObjects != 10 {
		t.Errorf("SyncedObjects = %d, want 10", rep.SyncedObjects)
	}
	if rep.DepthShare(0) != 1.0 {
		t.Errorf("DepthShare(0) = %f, want 1", rep.DepthShare(0))
	}
	if rep.MaxDepth() != 1 {
		t.Errorf("MaxDepth = %d, want 1", rep.MaxDepth())
	}
}

func TestCountsNestedDepths(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	o := f.heap.New("X")
	// Depth pattern: lock to 3, unlock to 1, lock to 3 again.
	f.r.Lock(th, o) // depth 0
	f.r.Lock(th, o) // depth 1
	f.r.Lock(th, o) // depth 2
	mustUnlock(t, f, th, o, 2)
	f.r.Lock(th, o) // depth 1
	f.r.Lock(th, o) // depth 2
	mustUnlock(t, f, th, o, 3)

	rep := f.r.Snapshot()
	if rep.ByDepth[0] != 1 || rep.ByDepth[1] != 2 || rep.ByDepth[2] != 2 {
		t.Errorf("ByDepth = %v, want [1 2 2 ...]", rep.ByDepth)
	}
	if rep.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", rep.MaxDepth())
	}
	if rep.SyncedObjects != 1 {
		t.Errorf("SyncedObjects = %d, want 1", rep.SyncedObjects)
	}
	if rep.SyncsPerObject != 5 {
		t.Errorf("SyncsPerObject = %f, want 5", rep.SyncsPerObject)
	}
}

func mustUnlock(t *testing.T, f *fixture, th *threading.Thread, o *object.Object, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.r.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOverflowBucket(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < MaxDepthBucket+5; i++ {
		f.r.Lock(th, o)
	}
	rep := f.r.Snapshot()
	if rep.ByDepth[MaxDepthBucket] != 5 {
		t.Errorf("overflow bucket = %d, want 5", rep.ByDepth[MaxDepthBucket])
	}
	if rep.MaxDepth() != MaxDepthBucket+1 {
		t.Errorf("MaxDepth = %d, want %d", rep.MaxDepth(), MaxDepthBucket+1)
	}
	mustUnlock(t, f, th, o, MaxDepthBucket+5)
}

func TestFailedUnlockDoesNotDecrement(t *testing.T) {
	t.Parallel()
	f := newFixture()
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	f.r.Lock(a, o)
	if err := f.r.Unlock(b, o); err == nil {
		t.Fatal("unlock by non-owner succeeded")
	}
	f.r.Lock(a, o) // should count as depth 1, not 0
	rep := f.r.Snapshot()
	if rep.ByDepth[1] != 1 {
		t.Errorf("ByDepth[1] = %d, want 1", rep.ByDepth[1])
	}
	mustUnlock(t, f, a, o, 2)
}

func TestMedianSyncsPerObject(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	// Three objects with 1, 2 and 9 syncs: median 2.
	counts := []int{1, 2, 9}
	for _, n := range counts {
		o := f.heap.New("X")
		for i := 0; i < n; i++ {
			f.r.Lock(th, o)
			if err := f.r.Unlock(th, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := f.r.Snapshot()
	if rep.MedianSyncsPerObject != 2 {
		t.Errorf("median = %f, want 2", rep.MedianSyncsPerObject)
	}
	if rep.SyncsPerObject != 4 {
		t.Errorf("mean = %f, want 4", rep.SyncsPerObject)
	}
}

func TestWaitNotifyCounted(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	o := f.heap.New("X")
	f.r.Lock(th, o)
	if _, err := f.r.Wait(th, o, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := f.r.Notify(th, o); err != nil {
		t.Fatal(err)
	}
	if err := f.r.NotifyAll(th, o); err != nil {
		t.Fatal(err)
	}
	if err := f.r.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	rep := f.r.Snapshot()
	if rep.Waits != 1 {
		t.Errorf("Waits = %d, want 1", rep.Waits)
	}
	if rep.Notifies != 2 {
		t.Errorf("Notifies = %d, want 2", rep.Notifies)
	}
}

func TestDepthSurvivesWait(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	o := f.heap.New("X")
	f.r.Lock(th, o)
	f.r.Lock(th, o)
	if _, err := f.r.Wait(th, o, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f.r.Lock(th, o) // depth 2 after the wait restored depth 2
	rep := f.r.Snapshot()
	if rep.ByDepth[2] != 1 {
		t.Errorf("ByDepth[2] = %d, want 1 (depth preserved across wait)", rep.ByDepth[2])
	}
	mustUnlock(t, f, th, o, 3)
}

func TestNameAndInner(t *testing.T) {
	t.Parallel()
	inner := core.NewDefault()
	r := New(inner)
	if r.Name() != "ThinLock+stats" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Inner() != inner {
		t.Error("Inner mismatch")
	}
}

func TestReportString(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	o := f.heap.New("X")
	f.r.Lock(th, o)
	f.r.Lock(th, o)
	mustUnlock(t, f, th, o, 2)
	s := f.r.Snapshot().String()
	for _, want := range []string{"syncs=2", "First=50.0%", "Second=50.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestEmptyReport(t *testing.T) {
	t.Parallel()
	rep := New(core.NewDefault()).Snapshot()
	if rep.DepthShare(0) != 0 {
		t.Error("DepthShare on empty report")
	}
	if rep.MaxDepth() != 0 {
		t.Error("MaxDepth on empty report")
	}
	if rep.DepthShare(MaxDepthBucket+3) != 0 {
		t.Error("DepthShare beyond buckets on empty report")
	}
}

func TestResetReturnsAndClears(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")
	f.r.Lock(th, a)
	f.r.Lock(th, a) // nested: stays held across the reset
	f.r.Lock(th, b)
	if err := f.r.Unlock(th, b); err != nil {
		t.Fatal(err)
	}

	rep := f.r.Reset()
	if rep.TotalSyncs != 3 || rep.SyncedObjects != 2 {
		t.Errorf("pre-reset report = %+v", rep)
	}

	// Post-reset phase starts from zero but the in-flight depth on a is
	// preserved: the next lock on a counts at depth 2.
	f.r.Lock(th, a)
	rep2 := f.r.Snapshot()
	if rep2.TotalSyncs != 1 || rep2.SyncedObjects != 1 {
		t.Errorf("post-reset report = %+v", rep2)
	}
	if rep2.ByDepth[2] != 1 {
		t.Errorf("nesting depth lost across reset: %v", rep2.ByDepth)
	}
	for i := 0; i < 3; i++ {
		if err := f.r.Unlock(th, a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeRecomputesDerivedColumns(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")
	lockN := func(o *object.Object, n int) {
		for i := 0; i < n; i++ {
			f.r.Lock(th, o)
			if err := f.r.Unlock(th, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	lockN(a, 4)
	phase1 := f.r.Reset()
	lockN(a, 2)
	lockN(b, 6)
	phase2 := f.r.Snapshot()

	merged := phase1.Merge(phase2)
	if merged.TotalSyncs != 12 {
		t.Errorf("merged TotalSyncs = %d, want 12", merged.TotalSyncs)
	}
	if merged.SyncedObjects != 2 {
		t.Errorf("merged SyncedObjects = %d, want 2", merged.SyncedObjects)
	}
	if merged.ObjSyncs[a.ID()] != 6 || merged.ObjSyncs[b.ID()] != 6 {
		t.Errorf("merged ObjSyncs = %v", merged.ObjSyncs)
	}
	// Median over {6, 6} = 6; not derivable by averaging phase medians.
	if merged.MedianSyncsPerObject != 6 {
		t.Errorf("merged median = %f, want 6", merged.MedianSyncsPerObject)
	}
	if merged.SyncsPerObject != 6 {
		t.Errorf("merged syncs/obj = %f, want 6", merged.SyncsPerObject)
	}
	// Merge must not alias the inputs' maps.
	merged.ObjSyncs[a.ID()] = 999
	if phase1.ObjSyncs[a.ID()] == 999 || phase2.ObjSyncs[a.ID()] == 999 {
		t.Error("Merge aliased an input ObjSyncs map")
	}
}

func TestTopObjectsRanksBySyncCount(t *testing.T) {
	t.Parallel()
	f := newFixture()
	th := f.thread(t)
	hot := f.heap.New("Hot")
	warm := f.heap.New("Warm")
	cold := f.heap.New("Cold")
	lockN := func(o *object.Object, n int) {
		for i := 0; i < n; i++ {
			f.r.Lock(th, o)
			if err := f.r.Unlock(th, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	lockN(hot, 9)
	lockN(warm, 4)
	lockN(cold, 1)

	rep := f.r.Snapshot()
	top := rep.TopObjects(2)
	if len(top) != 2 {
		t.Fatalf("TopObjects(2) returned %d entries", len(top))
	}
	if top[0].ID != hot.ID() || top[0].Syncs != 9 {
		t.Errorf("top[0] = %+v, want hot with 9 syncs", top[0])
	}
	if top[1].ID != warm.ID() || top[1].Syncs != 4 {
		t.Errorf("top[1] = %+v, want warm with 4 syncs", top[1])
	}
	// n <= 0 and n beyond the population both return everything.
	if all := rep.TopObjects(0); len(all) != 3 || all[2].ID != cold.ID() {
		t.Errorf("TopObjects(0) = %+v, want all three with cold last", all)
	}
	if all := rep.TopObjects(100); len(all) != 3 {
		t.Errorf("TopObjects(100) returned %d entries, want 3", len(all))
	}
	if empty := (Report{}).TopObjects(5); len(empty) != 0 {
		t.Errorf("empty report TopObjects = %+v", empty)
	}
}

func TestTopObjectsTieBreakIsDeterministic(t *testing.T) {
	t.Parallel()
	rep := Report{ObjSyncs: map[uint64]uint64{7: 3, 2: 3, 5: 3}}
	for i := 0; i < 10; i++ {
		top := rep.TopObjects(0)
		if top[0].ID != 2 || top[1].ID != 5 || top[2].ID != 7 {
			t.Fatalf("tie order unstable: %+v", top)
		}
	}
}
