// Package lockstat wraps any lock implementation with the instrumentation
// used for the paper's characterization experiments: the per-nesting-depth
// breakdown of lock operations (Figure 3) and the per-object
// synchronization counts behind Table 1's "Sync'd Objects", "Syncs" and
// "Syncs/S.Obj" columns.
package lockstat

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// MaxDepthBucket is the deepest individually-tracked nesting depth;
// deeper acquisitions land in the overflow bucket. The paper's
// benchmarks never nested deeper than four (§3.2).
const MaxDepthBucket = 8

// key identifies a (thread, object) pair for depth tracking.
type key struct {
	thread uint16
	object uint64
}

// Recorder wraps a Locker, counting every operation. It is safe for
// concurrent use; the instrumentation cost is irrelevant because the
// characterization runs are not timed.
type Recorder struct {
	inner lockapi.Locker

	mu       sync.Mutex
	depths   map[key]int
	byDepth  [MaxDepthBucket + 1]uint64 // index d = lock at depth d (0 = unlocked object); last = overflow
	objSyncs map[uint64]uint64          // object id → lock ops
	total    uint64
	waits    uint64
	notifies uint64
}

// New returns a Recorder wrapping inner.
func New(inner lockapi.Locker) *Recorder {
	return &Recorder{
		inner:    inner,
		depths:   make(map[key]int),
		objSyncs: make(map[uint64]uint64),
	}
}

// Name implements lockapi.Locker.
func (r *Recorder) Name() string { return r.inner.Name() + "+stats" }

// Inner returns the wrapped implementation.
func (r *Recorder) Inner() lockapi.Locker { return r.inner }

// Lock implements lockapi.Locker.
func (r *Recorder) Lock(t *threading.Thread, o *object.Object) {
	r.mu.Lock()
	k := key{t.Index(), o.ID()}
	d := r.depths[k]
	if d >= MaxDepthBucket {
		r.byDepth[MaxDepthBucket]++
	} else {
		r.byDepth[d]++
	}
	r.depths[k] = d + 1
	r.objSyncs[o.ID()]++
	r.total++
	r.mu.Unlock()
	r.inner.Lock(t, o)
}

// Unlock implements lockapi.Locker.
func (r *Recorder) Unlock(t *threading.Thread, o *object.Object) error {
	err := r.inner.Unlock(t, o)
	if err == nil {
		r.mu.Lock()
		k := key{t.Index(), o.ID()}
		if d := r.depths[k]; d > 1 {
			r.depths[k] = d - 1
		} else {
			delete(r.depths, k)
		}
		r.mu.Unlock()
	}
	return err
}

// Wait implements lockapi.Locker. The recorded depth is preserved across
// the wait because the monitor restores the full recursion count.
func (r *Recorder) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	r.mu.Lock()
	r.waits++
	r.mu.Unlock()
	return r.inner.Wait(t, o, d)
}

// Notify implements lockapi.Locker.
func (r *Recorder) Notify(t *threading.Thread, o *object.Object) error {
	r.mu.Lock()
	r.notifies++
	r.mu.Unlock()
	return r.inner.Notify(t, o)
}

// NotifyAll implements lockapi.Locker.
func (r *Recorder) NotifyAll(t *threading.Thread, o *object.Object) error {
	r.mu.Lock()
	r.notifies++
	r.mu.Unlock()
	return r.inner.NotifyAll(t, o)
}

// Report is a snapshot of everything the Recorder observed.
type Report struct {
	// ByDepth[d] counts lock operations performed on an object the
	// thread already held d times: ByDepth[0] is the paper's "First"
	// bar of Figure 3, ByDepth[1] "Second", and so on. The final
	// element aggregates depths >= MaxDepthBucket.
	ByDepth [MaxDepthBucket + 1]uint64
	// TotalSyncs is the total number of lock operations.
	TotalSyncs uint64
	// SyncedObjects is the number of distinct objects ever locked.
	SyncedObjects int
	// SyncsPerObject is TotalSyncs / SyncedObjects.
	SyncsPerObject float64
	// MedianSyncsPerObject is the median lock-op count across synced
	// objects.
	MedianSyncsPerObject float64
	// Waits and Notifies count the respective operations.
	Waits    uint64
	Notifies uint64
	// ObjSyncs carries the per-object lock-op counts behind the derived
	// columns, so independently taken Reports can be merged exactly
	// (including the median, which is not additive).
	ObjSyncs map[uint64]uint64
}

// Snapshot returns the current Report. The report owns its ObjSyncs
// copy, so it stays valid (and mergeable) after the Recorder moves on.
func (r *Recorder) Snapshot() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// snapshotLocked builds a Report; caller holds r.mu.
func (r *Recorder) snapshotLocked() Report {
	rep := Report{
		ByDepth:    r.byDepth,
		TotalSyncs: r.total,
		Waits:      r.waits,
		Notifies:   r.notifies,
		ObjSyncs:   make(map[uint64]uint64, len(r.objSyncs)),
	}
	for id, c := range r.objSyncs {
		rep.ObjSyncs[id] = c
	}
	rep.finalize()
	return rep
}

// Reset clears the accumulated statistics and returns the Report they
// formed, so one Recorder can be reused across measurement phases
// without per-object map growth leaking between runs. The in-flight
// nesting-depth tracking is preserved: locks held across the reset keep
// unwinding correctly.
func (r *Recorder) Reset() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.snapshotLocked()
	r.byDepth = [MaxDepthBucket + 1]uint64{}
	r.objSyncs = make(map[uint64]uint64)
	r.total = 0
	r.waits = 0
	r.notifies = 0
	return rep
}

// finalize recomputes the derived columns (synced objects, syncs per
// object, median) from ObjSyncs.
func (rep *Report) finalize() {
	rep.SyncedObjects = len(rep.ObjSyncs)
	rep.SyncsPerObject = 0
	rep.MedianSyncsPerObject = 0
	if rep.SyncedObjects == 0 {
		return
	}
	rep.SyncsPerObject = float64(rep.TotalSyncs) / float64(rep.SyncedObjects)
	counts := make([]uint64, 0, len(rep.ObjSyncs))
	for _, c := range rep.ObjSyncs {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	mid := len(counts) / 2
	if len(counts)%2 == 1 {
		rep.MedianSyncsPerObject = float64(counts[mid])
	} else {
		rep.MedianSyncsPerObject = float64(counts[mid-1]+counts[mid]) / 2
	}
}

// Merge returns a new Report combining rep and other, as if one Recorder
// had observed both phases: depth buckets and totals add, per-object
// counts add object-wise, and the derived columns (including the median)
// are recomputed from the merged per-object counts.
func (rep Report) Merge(other Report) Report {
	out := Report{
		TotalSyncs: rep.TotalSyncs + other.TotalSyncs,
		Waits:      rep.Waits + other.Waits,
		Notifies:   rep.Notifies + other.Notifies,
		ObjSyncs:   make(map[uint64]uint64, len(rep.ObjSyncs)+len(other.ObjSyncs)),
	}
	for d := range out.ByDepth {
		out.ByDepth[d] = rep.ByDepth[d] + other.ByDepth[d]
	}
	for id, c := range rep.ObjSyncs {
		out.ObjSyncs[id] += c
	}
	for id, c := range other.ObjSyncs {
		out.ObjSyncs[id] += c
	}
	out.finalize()
	return out
}

// ObjectCount is one entry of a TopObjects ranking.
type ObjectCount struct {
	ID    uint64
	Syncs uint64
}

// TopObjects returns the n most-locked objects, most first (ties broken
// by id for determinism); n <= 0 or n beyond the population returns all.
// This is the Figure 4 shape — lock operations concentrate on a few hot
// objects — computed from the same per-object counts that feed the
// median, and the characterization-side counterpart of the contention
// profiler's per-object records (internal/lockprof ranks by delay, this
// ranks by operation count).
func (rep Report) TopObjects(n int) []ObjectCount {
	out := make([]ObjectCount, 0, len(rep.ObjSyncs))
	for id, c := range rep.ObjSyncs {
		out = append(out, ObjectCount{ID: id, Syncs: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Syncs != out[j].Syncs {
			return out[i].Syncs > out[j].Syncs
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// DepthShare returns the fraction of lock operations at the given depth
// (0 = first lock). Returns 0 when no operations were recorded.
func (rep Report) DepthShare(depth int) float64 {
	if rep.TotalSyncs == 0 {
		return 0
	}
	if depth > MaxDepthBucket {
		depth = MaxDepthBucket
	}
	return float64(rep.ByDepth[depth]) / float64(rep.TotalSyncs)
}

// MaxDepth returns the deepest nesting depth observed (1 = never nested),
// or 0 if nothing was locked. Depths beyond MaxDepthBucket report
// MaxDepthBucket+1.
func (rep Report) MaxDepth() int {
	for d := MaxDepthBucket; d >= 0; d-- {
		if rep.ByDepth[d] > 0 {
			return d + 1
		}
	}
	return 0
}

// String renders the Figure 3 style breakdown.
func (rep Report) String() string {
	labels := [...]string{"First", "Second", "Third", "Fourth", "Fifth", "Sixth", "Seventh", "Eighth", "Deeper"}
	s := fmt.Sprintf("syncs=%d objects=%d syncs/obj=%.1f:", rep.TotalSyncs, rep.SyncedObjects, rep.SyncsPerObject)
	for d, label := range labels {
		if rep.ByDepth[d] > 0 {
			s += fmt.Sprintf(" %s=%.1f%%", label, 100*rep.DepthShare(d))
		}
	}
	return s
}
