GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet lockvet race race-locks check explore fuzz-smoke obs-smoke deadlock-smoke bench-baseline bench-diff

all: vet build lockvet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lockvet runs the project's own static lock checker end to end:
# scripts/lockvet_smoke.sh builds bin/lockvet, runs the go/analysis
# suite (lockword, pairedunlock, hookalloc) over the whole repo via
# `go vet -vettool`, checks every bytecode corpus program against the
# structured-locking verifier and its expected static lock-order
# verdict, and diffs the abba static graph against a live runtime
# lockdep export.
lockvet: build
	GO="$(GO)" scripts/lockvet_smoke.sh results/lockvet

# race runs the full suite under the race detector; -short trims the
# slowest stress rounds so the job stays CI-sized.
race:
	$(GO) test -race -short ./internal/... .

# race-locks runs the two lock-word protocol packages (biased
# reservation and thin locks) under the race detector at full strength
# (no -short): the revocation handshake's store/load ordering is exactly
# what the detector is for. The lockscope package rides along: its
# lock-free sample ring (concurrent sampler vs. readers) and its
# disabled/enabled overhead contract are race-sensitive by design.
race-locks:
	$(GO) test -race -count=1 ./internal/biased/... ./internal/core/... ./internal/lockscope/...

# check runs the concurrent differential checker CLI over every lock
# implementation, and the exhaustive small-scope explorer.
check: build
	$(GO) run ./cmd/lockcheck -rounds 10
	$(GO) run ./cmd/lockcheck -explore

# obs-smoke exercises the observability layer end to end: run the
# contended workload under cmd/lockmon with telemetry and the contention
# profiler enabled, emit the JSON snapshot, the Prometheus snapshot, the
# Perfetto trace and the pprof contention profile (lockmon self-validates
# the JSON artifacts), run the trace-format and overhead tests, and then
# smoke the live HTTP server: scripts/obs_smoke_serve.sh starts
# `lockmon -serve -scope`, curls /metrics, /debug/vars,
# /debug/lockprof/top (>= 2 contended sites), /debug/pprof/lockcontention
# (validated with `go tool pprof -raw`), /debug/lockscope/series (>= 2
# windows with activity, JSON and CSV), the /debug/lockscope/stream SSE
# feed and the dashboard, and finally runs macrobench -timeseries over
# bankmt and sessiond and validates the written phase timelines.
obs-smoke: build
	mkdir -p results/obs
	$(GO) run ./cmd/lockmon -workload bankmt \
		-json results/obs/snapshot.json \
		-prom results/obs/snapshot.prom \
		-trace results/obs/trace.json \
		-pprof results/obs/lockmon.pb.gz
	$(GO) test -run 'TestChromeTrace|TestDisabledHooks|TestEnabledSlowPath|TestDisabledProfiler|TestPprofProfile|TestDisabledScope|TestEnabledScope' \
		./internal/locktrace/ ./internal/telemetry/ ./internal/lockprof/ ./internal/lockscope/
	GO="$(GO)" scripts/obs_smoke_serve.sh results/obs

# deadlock-smoke exercises the lock-order watchdog end to end:
# scripts/deadlock_smoke.sh runs the abba workload (latent ABBA must be
# flagged without a hang), the safe dining workload (must stay silent),
# the dining-deadlock hazard under -watchdog (stall dump must name all
# five philosophers and exit 3), and the disabled-path overhead tests.
deadlock-smoke: build
	GO="$(GO)" scripts/deadlock_smoke.sh results/deadlock

# bench-baseline regenerates the committed performance floor under
# results/baseline (scale/samples chosen to finish in seconds; the
# matching bench-diff threshold is loose for the same reason).
bench-baseline: build
	$(GO) run ./cmd/macrobench -json -json-dir results/baseline \
		-scale 0.2 -samples 3 -only minibank,bankmt,sessiond,churn

# bench-diff measures the baseline workloads (plus the newer dining and
# abba workloads, which have no committed baseline and therefore come
# back as per-workload SKIPs, exercising that path) and compares against
# the committed baseline. The 2.5 (250%) threshold is deliberately
# loose: CI machines are noisy and the baseline was recorded elsewhere,
# so this gate only catches order-of-magnitude protocol regressions
# (e.g. a biased fast path falling back to inflation), not % drift.
bench-diff: build
	mkdir -p results/head
	$(GO) run ./cmd/macrobench -json -json-dir results/head \
		-scale 0.2 -samples 3 -only minibank,bankmt,sessiond,churn,dining,abba
	$(GO) run ./cmd/benchdiff -threshold 2.5 results/baseline results/head

# fuzz-smoke gives each fuzzer a short budget on top of its seed
# corpus (testdata/fuzz); any new crasher is written back to testdata.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/minijava
	$(GO) test -run '^$$' -fuzz FuzzVerify -fuzztime $(FUZZTIME) ./internal/vm
