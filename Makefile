GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet race check explore fuzz-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; -short trims the
# slowest stress rounds so the job stays CI-sized.
race:
	$(GO) test -race -short ./internal/... .

# check runs the concurrent differential checker CLI over every lock
# implementation, and the exhaustive small-scope explorer.
check: build
	$(GO) run ./cmd/lockcheck -rounds 10
	$(GO) run ./cmd/lockcheck -explore

# fuzz-smoke gives each fuzzer a short budget on top of its seed
# corpus (testdata/fuzz); any new crasher is written back to testdata.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/minijava
	$(GO) test -run '^$$' -fuzz FuzzVerify -fuzztime $(FUZZTIME) ./internal/vm
