// Integration tests spanning the whole stack: the public API, the
// bytecode VM, the synchronized class library, the macro workloads and
// every lock implementation and extension combination.
package thinlock_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"thinlock"
	"thinlock/internal/arch"
	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
	"thinlock/internal/workloads"
)

// lockerConfigs enumerates every implementation and extension combination
// the integration suite exercises.
func lockerConfigs() []struct {
	name string
	mk   func() lockapi.Locker
} {
	return []struct {
		name string
		mk   func() lockapi.Locker
	}{
		{"ThinLock", func() lockapi.Locker { return core.NewDefault() }},
		{"ThinLock-MP", func() lockapi.Locker {
			return core.New(core.Options{CPU: arch.PowerPCMP})
		}},
		{"ThinLock-deflate", func() lockapi.Locker {
			return core.New(core.Options{EnableDeflation: true})
		}},
		{"ThinLock-queued", func() lockapi.Locker {
			return core.New(core.Options{QueuedInflation: true})
		}},
		{"ThinLock-queued-deflate", func() lockapi.Locker {
			return core.New(core.Options{QueuedInflation: true, EnableDeflation: true})
		}},
		{"ThinLock-2bit", func() lockapi.Locker {
			return core.New(core.Options{CountBits: 2})
		}},
		{"JDK111", func() lockapi.Locker { return monitorcache.NewDefault() }},
		{"JDK111-tiny", func() lockapi.Locker {
			return monitorcache.New(monitorcache.Options{Capacity: 2})
		}},
		{"IBM112", func() lockapi.Locker { return hotlocks.NewDefault() }},
		{"IBM112-eager", func() lockapi.Locker {
			return hotlocks.New(hotlocks.Options{Threshold: 1})
		}},
	}
}

// TestWorkloadSuiteUnderEveryConfiguration runs every macro workload
// under every lock configuration and demands identical checksums.
func TestWorkloadSuiteUnderEveryConfiguration(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want := uint64(0)
			for i, cfg := range lockerConfigs() {
				ctx := jcl.NewContext(cfg.mk(), object.NewHeap())
				reg := threading.NewRegistry()
				th, err := reg.Attach("t")
				if err != nil {
					t.Fatal(err)
				}
				got := w.Run(ctx, th, 1)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("%s: checksum %#x, want %#x", cfg.name, got, want)
				}
			}
		})
	}
}

// TestVMContentionUnderEveryConfiguration runs a contended synchronized-
// method program on the VM under every configuration.
func TestVMContentionUnderEveryConfiguration(t *testing.T) {
	for _, cfg := range lockerConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			prog := vm.NewProgram()
			c := &vm.Class{Name: "Counter", NumFields: 1}
			prog.AddClass(c)
			prog.AddMethod(&vm.Method{
				Name: "inc", Class: c, Flags: vm.FlagSync,
				NumArgs: 1, MaxLocals: 1,
				Code: vm.NewAsm().
					Aload(0).Aload(0).GetField(0).Iconst(1).Iadd().PutField(0).
					Return().
					MustBuild(),
			})
			machine, err := vm.New(prog, cfg.mk(), object.NewHeap())
			if err != nil {
				t.Fatal(err)
			}
			o, err := machine.NewInstance("Counter")
			if err != nil {
				t.Fatal(err)
			}
			reg := threading.NewRegistry()
			const goroutines, iters = 4, 250
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th, err := reg.Attach("w")
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(th *threading.Thread) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if _, err := machine.Run(th, "Counter.inc", vm.RefValue(o)); err != nil {
							t.Error(err)
							return
						}
					}
				}(th)
			}
			wg.Wait()
			if o.Fields[0].I != goroutines*iters {
				t.Fatalf("counter = %d, want %d", o.Fields[0].I, goroutines*iters)
			}
		})
	}
}

// TestMicroKernelsUnderExtensions runs the Table 2 kernels under the
// extension configurations (the bench package itself only covers the
// paper's implementations).
func TestMicroKernelsUnderExtensions(t *testing.T) {
	const iters = 1_000
	for _, cfg := range lockerConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			m, err := bench.NewMicro(cfg.mk())
			if err != nil {
				t.Fatal(err)
			}
			for _, run := range []func() error{
				func() error { return m.Sync(iters) },
				func() error { return m.NestedSync(iters) },
				func() error { return m.MultiSync(40, iters) },
				func() error { return m.CallSync(iters) },
				func() error { return m.Threads(3, iters/3) },
			} {
				if err := run(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestPublicAPIProducerConsumerAcrossImplementations runs a wait/notify
// pipeline through the public Runtime under each implementation.
func TestPublicAPIProducerConsumerAcrossImplementations(t *testing.T) {
	impls := []thinlock.Implementation{thinlock.ThinLock, thinlock.JDK111, thinlock.IBM112}
	for _, impl := range impls {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			t.Parallel()
			rt := thinlock.New(thinlock.WithImplementation(impl))
			mon := rt.NewObject("queue")
			var queue []int
			const items = 500

			consumerDone := make(chan int, 1)
			done1, err := rt.Go("consumer", func(th *thinlock.Thread) {
				got := 0
				for got < items {
					rt.Lock(th, mon)
					for len(queue) == 0 {
						if _, err := rt.Wait(th, mon, 0); err != nil {
							t.Error(err)
							break
						}
					}
					queue = queue[:len(queue)-1]
					got++
					if err := rt.Unlock(th, mon); err != nil {
						t.Error(err)
					}
				}
				consumerDone <- got
			})
			if err != nil {
				t.Fatal(err)
			}
			done2, err := rt.Go("producer", func(th *thinlock.Thread) {
				for i := 0; i < items; i++ {
					rt.Lock(th, mon)
					queue = append(queue, i)
					if err := rt.Notify(th, mon); err != nil {
						t.Error(err)
					}
					if err := rt.Unlock(th, mon); err != nil {
						t.Error(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			select {
			case got := <-consumerDone:
				if got != items {
					t.Fatalf("consumed %d, want %d", got, items)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("pipeline deadlocked")
			}
			<-done1
			<-done2
		})
	}
}

// TestManyThreadsManyObjectsTorture mixes nested locking, wait/timeout,
// and contention over a pool of objects under the default thin locks.
func TestManyThreadsManyObjectsTorture(t *testing.T) {
	rt := thinlock.New()
	const (
		goroutines = 8
		objects    = 16
		iters      = 200
	)
	objs := make([]*thinlock.Object, objects)
	counters := make([]int, objects)
	for i := range objs {
		objs[i] = rt.NewObject(fmt.Sprintf("obj-%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		if _, err := rt.Go(fmt.Sprintf("w%d", g), func(th *thinlock.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*37 + i*11) % objects
				o := objs[k]
				rt.Lock(th, o)
				rt.Lock(th, o) // nested
				counters[k]++
				if i%50 == 25 {
					// Timed wait exercises inflation + requeueing.
					if _, err := rt.Wait(th, o, time.Millisecond); err != nil {
						t.Error(err)
					}
				}
				if err := rt.Unlock(th, o); err != nil {
					t.Error(err)
				}
				if err := rt.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("total = %d, want %d", total, goroutines*iters)
	}
}
