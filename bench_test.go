// Benchmarks regenerating the paper's evaluation with `go test -bench`.
//
// Mapping to the paper (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	BenchmarkNoSync, BenchmarkSync, BenchmarkNestedSync, BenchmarkCall,
//	BenchmarkCallSync, BenchmarkNestedCallSync, BenchmarkMultiSync,
//	BenchmarkThreads            — Table 2 kernels × Figure 4 comparison
//	BenchmarkTradeoffs          — Figure 6 implementation variants
//	BenchmarkMacro              — Figure 5 macro-benchmark comparison
//	BenchmarkDirectLockUnlock   — the raw fast path (no interpreter),
//	                              the paper's "17 instructions" claim
//	BenchmarkDeflationAblation  — extension: cost of deflating eagerly
//
// The cmd/microbench, cmd/macrobench, cmd/lockchar and cmd/tradeoffs
// binaries produce the paper-formatted tables; these benches expose the
// same kernels through the standard Go tooling.
package thinlock

import (
	"fmt"
	"testing"
	"time"

	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/workloads"
)

// benchMicro runs one Table 2 kernel under every standard implementation.
func benchMicro(b *testing.B, kernel string, param int) {
	for _, f := range bench.StandardImpls() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			m, err := bench.NewMicro(f.New())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := runKernelN(m, kernel, param, int64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func runKernelN(m *bench.Micro, kernel string, param int, n int64) error {
	switch kernel {
	case "NoSync":
		return m.NoSync(n)
	case "Sync":
		return m.Sync(n)
	case "NestedSync":
		return m.NestedSync(n)
	case "MixedSync":
		return m.MixedSync(n)
	case "MultiSync":
		return m.MultiSync(param, n)
	case "Call":
		return m.Call(n)
	case "CallSync":
		return m.CallSync(n)
	case "NestedCallSync":
		return m.NestedCallSync(n)
	case "Threads":
		per := n / int64(param)
		if per == 0 {
			per = 1
		}
		return m.Threads(param, per)
	}
	return fmt.Errorf("unknown kernel %s", kernel)
}

// BenchmarkNoSync measures the interpretation cost of the bare loop — the
// paper's reference point for all other kernels.
func BenchmarkNoSync(b *testing.B) { benchMicro(b, "NoSync", 0) }

// BenchmarkSync is Figure 4's headline: initial locking of an unlocked
// object (paper: ThinLock 3.7x JDK111, 1.8x IBM112).
func BenchmarkSync(b *testing.B) { benchMicro(b, "Sync", 0) }

// BenchmarkNestedSync measures nested locking (paper: IBM112 nearly
// matches ThinLock here).
func BenchmarkNestedSync(b *testing.B) { benchMicro(b, "NestedSync", 0) }

// BenchmarkMixedSync is the three-nested-locks kernel of §3.5.
func BenchmarkMixedSync(b *testing.B) { benchMicro(b, "MixedSync", 0) }

// BenchmarkCall is the non-synchronized method-call reference.
func BenchmarkCall(b *testing.B) { benchMicro(b, "Call", 0) }

// BenchmarkCallSync measures synchronized method invocation.
func BenchmarkCallSync(b *testing.B) { benchMicro(b, "CallSync", 0) }

// BenchmarkNestedCallSync measures nested synchronized method invocation.
func BenchmarkNestedCallSync(b *testing.B) { benchMicro(b, "NestedCallSync", 0) }

// BenchmarkMultiSync sweeps the lock working-set size. The paper's
// crossovers: IBM112 collapses past its 32 hot locks; JDK111 degrades as
// the monitor cache thrashes; ThinLock scales flat.
func BenchmarkMultiSync(b *testing.B) {
	for _, n := range []int{1, 32, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchMicro(b, "MultiSync", n)
		})
	}
}

// BenchmarkThreads sweeps contention: n threads hammering one object.
func BenchmarkThreads(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchMicro(b, "Threads", n)
		})
	}
}

// BenchmarkTradeoffs is Figure 6: the implementation-variant ladder on
// the Sync, MixedSync and CallSync kernels.
func BenchmarkTradeoffs(b *testing.B) {
	for _, kernel := range []string{"Sync", "MixedSync", "CallSync"} {
		b.Run(kernel, func(b *testing.B) {
			for _, f := range bench.VariantImpls() {
				f := f
				b.Run(f.Name, func(b *testing.B) {
					m, err := bench.NewMicro(f.New())
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					if err := runKernelN(m, kernel, 0, int64(b.N)); err != nil {
						b.Fatal(err)
					}
				})
			}
		})
	}
}

// BenchmarkMacro is Figure 5: the workload suite under the three
// implementations. b.N counts whole workload runs at a small fixed size.
func BenchmarkMacro(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for _, f := range bench.StandardImpls() {
				f := f
				b.Run(f.Name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						ctx := jcl.NewContext(f.New(), object.NewHeap())
						reg := threading.NewRegistry()
						t, err := reg.Attach("bench")
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						w.Run(ctx, t, 2)
					}
				})
			}
		})
	}
}

// BenchmarkDirectLockUnlock measures the raw lock/unlock pair through the
// Locker interface with no interpreter in the way — the closest Go
// analogue of the paper's inline fast-path instruction count.
func BenchmarkDirectLockUnlock(b *testing.B) {
	impls := append(bench.StandardImpls(),
		bench.Factory{Name: "ThinLock-Inline", New: func() lockapi.Locker {
			return core.New(core.Options{Variant: core.VariantInline})
		}},
		bench.Factory{Name: "ThinLock-UnlkCAS", New: func() lockapi.Locker {
			return core.New(core.Options{Variant: core.VariantUnlockCAS})
		}})
	for _, f := range impls {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			l := f.New()
			heap := object.NewHeap()
			reg := threading.NewRegistry()
			t, err := reg.Attach("bench")
			if err != nil {
				b.Fatal(err)
			}
			o := heap.New("X")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock(t, o)
				if err := l.Unlock(t, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectNestedLock measures the nested fast path (plain store).
func BenchmarkDirectNestedLock(b *testing.B) {
	for _, f := range bench.StandardImpls() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			l := f.New()
			heap := object.NewHeap()
			reg := threading.NewRegistry()
			t, err := reg.Attach("bench")
			if err != nil {
				b.Fatal(err)
			}
			o := heap.New("X")
			l.Lock(t, o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock(t, o)
				if err := l.Unlock(t, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContentionPolicy compares the paper's spin-with-back-off
// against the queued-inflation extension on the pathological long-hold
// case of §2.3.4. b.N counts contention rounds with a 200µs hold.
func BenchmarkContentionPolicy(b *testing.B) {
	for _, queued := range []bool{false, true} {
		name := "Spin"
		if queued {
			name = "Queued"
		}
		b.Run(name, func(b *testing.B) {
			r, err := bench.RunContentionPolicy(queued, b.N, 2, 200*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.SpinRounds)/float64(b.N), "spin-pauses/round")
			b.ReportMetric(float64(r.Parks)/float64(b.N), "parks/round")
		})
	}
}

// BenchmarkDeflationAblation compares the default keep-inflated policy
// against the eager-deflation extension on an uncontended fat lock —
// quantifying why the paper's "stays inflated" discipline is cheap
// insurance (DESIGN.md §6).
func BenchmarkDeflationAblation(b *testing.B) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"KeepInflated", core.Options{}},
		{"EagerDeflation", core.Options{EnableDeflation: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			l := core.New(cfg.opts)
			heap := object.NewHeap()
			reg := threading.NewRegistry()
			t, err := reg.Attach("bench")
			if err != nil {
				b.Fatal(err)
			}
			t2, err := reg.Attach("bench2")
			if err != nil {
				b.Fatal(err)
			}
			o := heap.New("X")
			// Inflate once by hand: t2 seeds contention.
			l.Lock(t, o)
			inflated := make(chan struct{})
			go func() {
				l.Lock(t2, o)
				if err := l.Unlock(t2, o); err != nil {
					b.Error(err)
				}
				close(inflated)
			}()
			for l.Stats().SpinRounds == 0 {
			}
			if err := l.Unlock(t, o); err != nil {
				b.Fatal(err)
			}
			<-inflated
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock(t, o)
				if err := l.Unlock(t, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
