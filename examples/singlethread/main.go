// Singlethread: the paper's motivating scenario. "Even single-threaded
// applications may spend up to half their time performing useless
// synchronization due to the thread-safe nature of the Java libraries"
// (§1). This example runs an identical single-threaded container workload
// under all three lock implementations, showing that the synchronization
// tax is real under the JDK111 monitor cache and nearly free under thin
// locks — with zero inflations, because a single thread never contends.
package main

import (
	"fmt"
	"log"
	"time"

	"thinlock"
)

// workload churns a synchronized-object graph the way a compiler or
// document tool churns Vectors and Hashtables: every operation locks.
func workload(rt *thinlock.Runtime, t *thinlock.Thread) int {
	const (
		outer = 200
		inner = 300
	)
	total := 0
	table := rt.NewObject("SymbolTable")
	for i := 0; i < outer; i++ {
		vec := rt.NewObject("Vector")
		for j := 0; j < inner; j++ {
			// One synchronized call on the shared table...
			rt.Synchronized(t, table, func() { total++ })
			// ...and one on the local vector, like addElement.
			rt.Synchronized(t, vec, func() { total++ })
		}
	}
	return total
}

func run(name string, opts ...thinlock.Option) time.Duration {
	rt := thinlock.New(opts...)
	t, err := rt.AttachThread("main")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	total := workload(rt, t)
	elapsed := time.Since(start)

	s := rt.ThinLockStats()
	fmt.Printf("%-9s %10v  (%d sync ops, inflations=%d)\n",
		name, elapsed.Round(time.Microsecond), total, s.Inflations())
	return elapsed
}

func main() {
	fmt.Println("single-threaded synchronized-container workload:")
	thin := run("ThinLock")
	ibm := run("IBM112", thinlock.WithImplementation(thinlock.IBM112))
	jdk := run("JDK111", thinlock.WithImplementation(thinlock.JDK111))

	fmt.Printf("\nspeedup over JDK111: ThinLock %.2fx, IBM112 %.2fx\n",
		float64(jdk)/float64(thin), float64(jdk)/float64(ibm))
	fmt.Println("(the paper's single-threaded macro suite shows the same ordering)")
}
