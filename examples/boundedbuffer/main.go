// Boundedbuffer: the classic monitor example — a producer/consumer queue
// built from Wait/Notify on a thinlock object, the Java idiom
//
//	synchronized (buf) { while (full) buf.wait(); ...; buf.notifyAll(); }
//
// Waiting requires queues, so the first Wait inflates the buffer's lock;
// the example prints the inflation statistics to show it happened exactly
// once.
package main

import (
	"fmt"
	"log"

	"thinlock"
)

// boundedBuffer is a fixed-capacity queue guarded by one monitor.
type boundedBuffer struct {
	rt    *thinlock.Runtime
	mon   *thinlock.Object
	items []int
	cap   int
}

func newBoundedBuffer(rt *thinlock.Runtime, capacity int) *boundedBuffer {
	return &boundedBuffer{rt: rt, mon: rt.NewObject("BoundedBuffer"), cap: capacity}
}

// put blocks while the buffer is full.
func (b *boundedBuffer) put(t *thinlock.Thread, x int) {
	b.rt.Lock(t, b.mon)
	defer func() {
		if err := b.rt.Unlock(t, b.mon); err != nil {
			log.Fatal(err)
		}
	}()
	for len(b.items) == b.cap {
		if _, err := b.rt.Wait(t, b.mon, 0); err != nil {
			log.Fatal(err)
		}
	}
	b.items = append(b.items, x)
	if err := b.rt.NotifyAll(t, b.mon); err != nil {
		log.Fatal(err)
	}
}

// take blocks while the buffer is empty.
func (b *boundedBuffer) take(t *thinlock.Thread) int {
	b.rt.Lock(t, b.mon)
	defer func() {
		if err := b.rt.Unlock(t, b.mon); err != nil {
			log.Fatal(err)
		}
	}()
	for len(b.items) == 0 {
		if _, err := b.rt.Wait(t, b.mon, 0); err != nil {
			log.Fatal(err)
		}
	}
	x := b.items[0]
	b.items = b.items[1:]
	if err := b.rt.NotifyAll(t, b.mon); err != nil {
		log.Fatal(err)
	}
	return x
}

func main() {
	const (
		producers = 3
		consumers = 3
		perTask   = 2000
	)
	rt := thinlock.New()
	buf := newBoundedBuffer(rt, 8)

	results := make(chan int, producers*perTask)
	var done []<-chan struct{}

	for p := 0; p < producers; p++ {
		p := p
		ch, err := rt.Go(fmt.Sprintf("producer-%d", p), func(t *thinlock.Thread) {
			for i := 0; i < perTask; i++ {
				buf.put(t, p*perTask+i)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		done = append(done, ch)
	}
	for c := 0; c < consumers; c++ {
		ch, err := rt.Go(fmt.Sprintf("consumer-%d", c), func(t *thinlock.Thread) {
			for i := 0; i < producers*perTask/consumers; i++ {
				results <- buf.take(t)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		done = append(done, ch)
	}
	for _, ch := range done {
		<-ch
	}
	close(results)

	seen := make(map[int]bool)
	for x := range results {
		if seen[x] {
			log.Fatalf("item %d consumed twice", x)
		}
		seen[x] = true
	}
	fmt.Printf("transferred %d items exactly once\n", len(seen))

	s := rt.ThinLockStats()
	fmt.Printf("buffer lock inflated: %v (wait-inflations=%d, contention-inflations=%d, fat locks=%d)\n",
		rt.Inflated(buf.mon), s.InflationsWait, s.InflationsContention, s.FatLocks)
}
