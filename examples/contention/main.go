// Contention: demonstrates the thin→fat transition of §2.3.4. Several
// threads hammer one shared counter object and a set of mostly-private
// objects. The shared object inflates (exactly once — "once an object's
// lock is inflated, it remains inflated for the lifetime of the object"),
// while the private objects stay thin, so the fat-lock population stays
// tiny even under heavy synchronization traffic.
package main

import (
	"fmt"
	"log"
	"runtime"

	"thinlock"
)

func main() {
	const (
		threads = 8
		iters   = 50_000
	)
	rt := thinlock.New()

	shared := rt.NewObject("SharedCounter")
	privates := make([]*thinlock.Object, threads)
	for i := range privates {
		privates[i] = rt.NewObject("PrivateScratch")
	}

	counter := 0
	var done []<-chan struct{}
	for i := 0; i < threads; i++ {
		i := i
		ch, err := rt.Go(fmt.Sprintf("worker-%d", i), func(t *thinlock.Thread) {
			scratch := 0
			for n := 0; n < iters; n++ {
				// Contended: every thread locks the shared object.
				// The occasional yield inside the critical section
				// guarantees overlap even on a single-CPU machine,
				// so the thin→fat transition is visible.
				rt.Synchronized(t, shared, func() {
					counter++
					if n%5000 == 0 {
						runtime.Gosched()
					}
				})
				// Uncontended: each thread locks its own object.
				rt.Synchronized(t, privates[i], func() { scratch++ })
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		done = append(done, ch)
	}
	for _, ch := range done {
		<-ch
	}

	want := threads * iters
	fmt.Printf("counter = %d (want %d) — mutual exclusion held\n", counter, want)
	if counter != want {
		log.Fatal("lost updates!")
	}

	fmt.Printf("shared object inflated:  %v\n", rt.Inflated(shared))
	thinCount := 0
	for _, p := range privates {
		if !rt.Inflated(p) {
			thinCount++
		}
	}
	fmt.Printf("private objects thin:    %d / %d\n", thinCount, threads)

	s := rt.ThinLockStats()
	fmt.Printf("inflations: contention=%d overflow=%d wait=%d; spins=%d; fat locks=%d\n",
		s.InflationsContention, s.InflationsOverflow, s.InflationsWait,
		s.SpinAcquisitions, s.FatLocks)
	fmt.Printf("(%d sync ops performed; only %d monitor(s) ever allocated)\n",
		2*want, s.FatLocks)
}
