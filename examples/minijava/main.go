// Minijava: the full language-processing pipeline end to end. A small
// Java-like program with synchronized methods and synchronized blocks is
// compiled to bytecode (monitorenter/monitorexit and synchronized-method
// flags included), then executed on the interpreter under each of the
// paper's three lock implementations, with multiple threads hammering the
// compiled synchronized code.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/minijava"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

const source = `
// A bank with synchronized deposits: the classic monitor example,
// here compiled from source and run on the bytecode VM.
class Account {
    field balance;
    sync method deposit(n) {
        this.balance = this.balance + n;
        return this.balance;
    }
    method balanceOf() { return this.balance; }
}

func depositor(a: Account, times, amount) {
    var i = 0;
    while (i < times) {
        a.deposit(amount);
        i = i + 1;
    }
    return 0;
}
`

func main() {
	prog, err := minijava.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled methods:")
	for _, m := range prog.Methods {
		sync := ""
		if m.Sync() {
			sync = " (synchronized)"
		}
		fmt.Printf("  %s%s: %d instructions\n", m.QualifiedName(), sync, len(m.Code))
	}

	const (
		threads = 4
		times   = 30_000
		amount  = 3
	)

	for _, f := range bench.StandardImpls() {
		locker := f.New()
		machine, err := vm.New(prog, locker, object.NewHeap())
		if err != nil {
			log.Fatal(err)
		}
		account, err := machine.NewInstance("Account")
		if err != nil {
			log.Fatal(err)
		}
		reg := threading.NewRegistry()

		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			th, err := reg.Attach(fmt.Sprintf("depositor-%d", i))
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(th *threading.Thread) {
				defer wg.Done()
				if _, err := machine.Run(th, "depositor",
					vm.RefValue(account), vm.IntValue(times), vm.IntValue(amount)); err != nil {
					log.Fatal(err)
				}
			}(th)
		}
		wg.Wait()
		elapsed := time.Since(start)

		main, err := reg.Attach("main")
		if err != nil {
			log.Fatal(err)
		}
		res, err := machine.Run(main, "Account.balanceOf", vm.RefValue(account))
		if err != nil {
			log.Fatal(err)
		}
		want := int64(threads * times * amount)
		status := "OK"
		if res.I != want {
			status = "LOST UPDATES"
		}
		extra := ""
		if tl, ok := locker.(*core.ThinLocks); ok {
			s := tl.Stats()
			extra = fmt.Sprintf("  (inflations=%d, fat locks=%d)", s.Inflations(), s.FatLocks)
		}
		fmt.Printf("%-9s balance=%d want=%d %s in %v%s\n",
			f.Name, res.I, want, status, elapsed.Round(time.Millisecond), extra)
	}
}
