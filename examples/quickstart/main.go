// Quickstart: the smallest complete thinlock program. It attaches a
// thread, allocates a lockable object, and exercises lock/unlock,
// synchronized blocks and nested locking, printing the lock word as it
// changes so the thin-lock encoding of the paper's Figure 1 is visible.
package main

import (
	"fmt"
	"log"

	"thinlock"
)

func main() {
	rt := thinlock.New()

	main, err := rt.AttachThread("main")
	if err != nil {
		log.Fatal(err)
	}
	defer rt.DetachThread(main)

	account := rt.NewObject("Account")
	fmt.Printf("unlocked:      header=%#010x\n", account.Header())

	// Initial lock: one compare-and-swap installs the thread index.
	rt.Lock(main, account)
	fmt.Printf("locked once:   header=%#010x (owner index %d)\n",
		account.Header(), main.Index())

	// Nested lock: a plain store increments the 8-bit count field.
	rt.Lock(main, account)
	fmt.Printf("locked twice:  header=%#010x (count field +1)\n", account.Header())

	if err := rt.Unlock(main, account); err != nil {
		log.Fatal(err)
	}
	if err := rt.Unlock(main, account); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unlocked:      header=%#010x\n", account.Header())

	// The synchronized block form, like Java's synchronized(account){}.
	balance := 0
	rt.Synchronized(main, account, func() {
		balance += 100
	})
	fmt.Printf("balance=%d inflated=%v (uncontended locks stay thin)\n",
		balance, rt.Inflated(account))

	stats := rt.ThinLockStats()
	fmt.Printf("inflations=%d fat locks=%d\n", stats.Inflations(), stats.FatLocks)
}
