// Deadlockcheck: the lock-trace analyzer in action. Two worker threads
// take a pair of accounts in opposite orders — the classic transfer
// deadlock pattern. The run is kept sequential so it terminates, but the
// trace analysis flags the lock-order inversion that would deadlock
// under unlucky scheduling.
package main

import (
	"fmt"
	"log"

	"thinlock"
)

func main() {
	rt := thinlock.New(thinlock.WithTrace(0))

	checking := rt.NewObject("Account:checking")
	savings := rt.NewObject("Account:savings")
	balances := map[*thinlock.Object]int{checking: 100, savings: 50}

	transfer := func(t *thinlock.Thread, from, to *thinlock.Object, amount int) {
		rt.Lock(t, from)
		rt.Lock(t, to) // second lock while holding the first: an order edge
		balances[from] -= amount
		balances[to] += amount
		if err := rt.Unlock(t, to); err != nil {
			log.Fatal(err)
		}
		if err := rt.Unlock(t, from); err != nil {
			log.Fatal(err)
		}
	}

	// Sequential here, but these two call sites establish opposite
	// acquisition orders — exactly what a reviewer should catch.
	done1, err := rt.Go("teller-1", func(t *thinlock.Thread) {
		transfer(t, checking, savings, 30)
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done1
	done2, err := rt.Go("teller-2", func(t *thinlock.Thread) {
		transfer(t, savings, checking, 10)
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done2

	fmt.Printf("balances: checking=%d savings=%d\n", balances[checking], balances[savings])

	rep, err := rt.TraceReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	if len(rep.Cycles) > 0 {
		fmt.Println("=> take the accounts in a canonical order (e.g. by ID) to make this safe")
	}
}
