// Package thinlock is a Go reproduction of "Thin Locks: Featherweight
// Synchronization for Java" (Bacon, Konuru, Murthy, Serrano; PLDI 1998).
//
// It provides Java-style monitors — recursive mutual exclusion plus
// wait/notify/notifyAll — over a simulated JVM object model, implemented
// with the paper's 24-bit lock-word protocol: uncontended locking is one
// compare-and-swap, nested locking and all unlocking are plain loads and
// stores, and contention inflates the lock into a heavy-weight monitor
// exactly once in the object's lifetime.
//
// The two baseline implementations the paper measures against — the Sun
// JDK 1.1.1 monitor cache ("JDK111") and the IBM JDK 1.1.2 hot locks
// ("IBM112") — are available through the same Runtime API, so workloads
// can be compared across implementations as in the paper's evaluation.
//
// # Usage
//
//	rt := thinlock.New()
//	main, _ := rt.AttachThread("main")
//	obj := rt.NewObject("Account")
//
//	rt.Synchronized(main, obj, func() {
//		// critical section
//	})
//
// Threads are explicit handles (the analogue of a JVM thread's execution
// environment); each goroutine that participates must attach its own
// Thread and must not share it.
package thinlock

import (
	"fmt"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/lockstat"
	"thinlock/internal/locktrace"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Implementation selects the lock implementation backing a Runtime.
type Implementation int

const (
	// ThinLock is the paper's algorithm (the default).
	ThinLock Implementation = iota
	// JDK111 is the Sun JDK 1.1.1 monitor-cache baseline.
	JDK111
	// IBM112 is the IBM JDK 1.1.2 hot-locks baseline.
	IBM112
)

// String returns the paper's name for the implementation.
func (i Implementation) String() string {
	switch i {
	case ThinLock:
		return "ThinLock"
	case JDK111:
		return "JDK111"
	case IBM112:
		return "IBM112"
	default:
		return "unknown-implementation"
	}
}

// Variant selects a thin-lock code-path variant from the paper's §3.5
// study. It only applies when the implementation is ThinLock.
type Variant = core.Variant

// Thin-lock variants (Figure 6 of the paper).
const (
	VariantStandard  = core.VariantStandard
	VariantInline    = core.VariantInline
	VariantFnCall    = core.VariantFnCall
	VariantMPSync    = core.VariantMPSync
	VariantKernelCAS = core.VariantKernelCAS
	VariantUnlockCAS = core.VariantUnlockCAS
	VariantNOP       = core.VariantNOP
)

// CPU selects the simulated machine model (§3.5.1).
type CPU = arch.CPU

// Simulated machines.
const (
	PowerPCUP = arch.PowerPCUP
	PowerPCMP = arch.PowerPCMP
	POWER     = arch.POWER
)

// Config collects the Runtime construction options.
type Config struct {
	impl      Implementation
	variant   Variant
	cpu       CPU
	deflation bool
	queued    bool
	countBits int
	stats     bool
	traceCap  int
	cacheCap  int
	hotSlots  int
}

// Option configures a Runtime.
type Option func(*Config)

// WithImplementation selects the lock implementation.
func WithImplementation(i Implementation) Option {
	return func(c *Config) { c.impl = i }
}

// WithVariant selects a thin-lock variant (ThinLock implementation only).
func WithVariant(v Variant) Option {
	return func(c *Config) { c.variant = v }
}

// WithCPU selects the simulated machine model for the standard thin-lock
// variant's dynamic machine test.
func WithCPU(cpu CPU) Option {
	return func(c *Config) { c.cpu = cpu }
}

// WithDeflation enables the deflation extension (not in the paper):
// uncontended fat locks are turned back into thin locks on release.
func WithDeflation() Option {
	return func(c *Config) { c.deflation = true }
}

// WithQueuedInflation enables the queued-contention extension (the
// Tasuki-lock protocol): contenders park on a contention queue instead
// of spinning, at the cost of one extra flag load per unlock.
func WithQueuedInflation() Option {
	return func(c *Config) { c.queued = true }
}

// WithCountBits narrows the thin lock's nested-count field to the given
// width (1..8) for the paper's §3.2 ablation; locks nesting deeper than
// 2^bits inflate.
func WithCountBits(bits int) Option {
	return func(c *Config) { c.countBits = bits }
}

// WithStats wraps the runtime's locker in a lock-operation recorder whose
// report is available from Runtime.LockStats. Recording adds overhead;
// do not enable it for timing runs.
func WithStats() Option {
	return func(c *Config) { c.stats = true }
}

// WithTrace wraps the runtime's locker in an event tracer with the given
// buffer capacity (0 selects a default). The recorded events are
// available from Runtime.TraceEvents, and Runtime.TraceReport analyzes
// them for hazards such as lock-order inversions. Tracing adds overhead;
// do not enable it for timing runs.
func WithTrace(capacity int) Option {
	return func(c *Config) {
		if capacity <= 0 {
			capacity = locktrace.DefaultCapacity
		}
		c.traceCap = capacity
	}
}

// WithMonitorCacheCapacity sets the JDK111 monitor pool size.
func WithMonitorCacheCapacity(n int) Option {
	return func(c *Config) { c.cacheCap = n }
}

// WithHotLockSlots sets the IBM112 hot-lock count (the paper uses 32).
func WithHotLockSlots(n int) Option {
	return func(c *Config) { c.hotSlots = n }
}

// Runtime owns a heap, a thread registry and a lock implementation.
// It is safe for concurrent use.
type Runtime struct {
	locker   lockapi.Locker
	thin     *core.ThinLocks // nil unless impl == ThinLock
	cache    *monitorcache.Cache
	hot      *hotlocks.HotLocks
	recorder *lockstat.Recorder
	tracer   *locktrace.Tracer
	heap     *object.Heap
	registry *threading.Registry
	impl     Implementation
}

// New constructs a Runtime. With no options it uses the paper's standard
// thin-lock configuration on a simulated PowerPC uniprocessor.
func New(opts ...Option) *Runtime {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	rt := &Runtime{
		heap:     object.NewHeap(),
		registry: threading.NewRegistry(),
		impl:     cfg.impl,
	}
	switch cfg.impl {
	case JDK111:
		rt.cache = monitorcache.New(monitorcache.Options{Capacity: cfg.cacheCap})
		rt.locker = rt.cache
	case IBM112:
		rt.hot = hotlocks.New(hotlocks.Options{Slots: cfg.hotSlots})
		rt.locker = rt.hot
	default:
		rt.thin = core.New(core.Options{
			Variant:         cfg.variant,
			CPU:             cfg.cpu,
			EnableDeflation: cfg.deflation,
			QueuedInflation: cfg.queued,
			CountBits:       cfg.countBits,
		})
		rt.locker = rt.thin
	}
	if cfg.stats {
		rt.recorder = lockstat.New(rt.locker)
		rt.locker = rt.recorder
	}
	if cfg.traceCap > 0 {
		rt.tracer = locktrace.New(rt.locker, cfg.traceCap)
		rt.locker = rt.tracer
	}
	return rt
}

// Thread is a handle for one logical thread of execution. Obtain one via
// AttachThread or Go; never share a Thread between goroutines.
type Thread struct {
	t *threading.Thread
}

// Name returns the name given at attach time.
func (t *Thread) Name() string { return t.t.Name() }

// Index returns the thread's 15-bit index as stored in thin lock words.
func (t *Thread) Index() uint16 { return t.t.Index() }

// Interrupt sets the thread's interrupt status, waking it if it is
// blocked in Wait.
func (t *Thread) Interrupt() { t.t.Interrupt() }

// String implements fmt.Stringer.
func (t *Thread) String() string { return t.t.String() }

// Object is a lockable heap object.
type Object struct {
	o *object.Object
}

// ID returns the object's allocation id.
func (o *Object) ID() uint64 { return o.o.ID() }

// Class returns the class tag given at allocation.
func (o *Object) Class() string { return o.o.Class() }

// Header returns the object's current header word, whose high 24 bits
// are the lock field (diagnostic; the value may be stale immediately).
func (o *Object) Header() uint32 { return o.o.Header() }

// String implements fmt.Stringer.
func (o *Object) String() string { return o.o.String() }

// ErrInterrupted is returned by Wait when the waiting thread was
// interrupted; the thread's interrupt status is cleared.
var ErrInterrupted = threading.ErrInterrupted

// ErrIllegalMonitorState is returned when a thread unlocks, waits on or
// notifies an object whose monitor it does not hold.
var ErrIllegalMonitorState = core.ErrIllegalMonitorState

// AttachThread registers a new logical thread. Call DetachThread when
// the thread terminates so its 15-bit index can be recycled.
func (r *Runtime) AttachThread(name string) (*Thread, error) {
	t, err := r.registry.Attach(name)
	if err != nil {
		return nil, err
	}
	return &Thread{t: t}, nil
}

// DetachThread releases the thread's index. The thread must not hold any
// locks.
func (r *Runtime) DetachThread(t *Thread) { r.registry.Detach(t.t) }

// Go runs fn on a new goroutine with a freshly attached Thread, detaching
// it afterwards. The returned channel closes when fn has returned.
func (r *Runtime) Go(name string, fn func(*Thread)) (<-chan struct{}, error) {
	return r.registry.Go(name, func(t *threading.Thread) {
		fn(&Thread{t: t})
	})
}

// NewObject allocates a lockable object with the given class tag.
func (r *Runtime) NewObject(class string) *Object {
	return &Object{o: r.heap.New(class)}
}

// Lock acquires o's monitor for t, blocking as needed.
func (r *Runtime) Lock(t *Thread, o *Object) { r.locker.Lock(t.t, o.o) }

// Unlock releases one level of o's monitor.
func (r *Runtime) Unlock(t *Thread, o *Object) error { return r.locker.Unlock(t.t, o.o) }

// Synchronized runs fn while holding o's monitor.
func (r *Runtime) Synchronized(t *Thread, o *Object, fn func()) {
	lockapi.Synchronized(r.locker, t.t, o.o, fn)
}

// Wait releases o's monitor, blocks until notified, interrupted, or d
// elapses (d <= 0 waits forever), and re-acquires the monitor at the
// original recursion depth. notified is false when the wakeup was a
// timeout.
func (r *Runtime) Wait(t *Thread, o *Object, d time.Duration) (notified bool, err error) {
	return r.locker.Wait(t.t, o.o, d)
}

// Notify wakes one thread waiting on o.
func (r *Runtime) Notify(t *Thread, o *Object) error { return r.locker.Notify(t.t, o.o) }

// NotifyAll wakes every thread waiting on o.
func (r *Runtime) NotifyAll(t *Thread, o *Object) error { return r.locker.NotifyAll(t.t, o.o) }

// Implementation reports which lock implementation backs the runtime.
func (r *Runtime) Implementation() Implementation { return r.impl }

// Name returns the implementation's report name.
func (r *Runtime) Name() string { return r.locker.Name() }

// Inflated reports whether o's lock is currently a fat lock. Always
// false for the baseline implementations, which have no thin state.
func (r *Runtime) Inflated(o *Object) bool {
	if r.thin == nil {
		return false
	}
	return r.thin.Inflated(o.o)
}

// ThinLockStats returns the thin-lock counters (inflations, spins,
// deflations), or zero values for the baseline implementations.
func (r *Runtime) ThinLockStats() core.Stats {
	if r.thin == nil {
		return core.Stats{}
	}
	return r.thin.Stats()
}

// LockStats returns the lock-operation report recorded under WithStats.
// It returns an error if WithStats was not enabled.
func (r *Runtime) LockStats() (lockstat.Report, error) {
	if r.recorder == nil {
		return lockstat.Report{}, fmt.Errorf("thinlock: runtime built without WithStats")
	}
	return r.recorder.Snapshot(), nil
}

// TraceEvents returns the events recorded under WithTrace. It returns an
// error if WithTrace was not enabled.
func (r *Runtime) TraceEvents() ([]locktrace.Event, error) {
	if r.tracer == nil {
		return nil, fmt.Errorf("thinlock: runtime built without WithTrace")
	}
	return r.tracer.Events(), nil
}

// TraceReport analyzes the recorded trace for hazards: failed
// operations, locks still held, and lock-order inversions that indicate
// potential deadlocks. It returns an error if WithTrace was not enabled.
func (r *Runtime) TraceReport() (locktrace.Report, error) {
	if r.tracer == nil {
		return locktrace.Report{}, fmt.Errorf("thinlock: runtime built without WithTrace")
	}
	return locktrace.Analyze(r.tracer.Events()), nil
}

// ObjectsAllocated reports how many objects the runtime's heap created.
func (r *Runtime) ObjectsAllocated() uint64 { return r.heap.Allocated() }

// AttachedThreads reports how many threads are currently attached.
func (r *Runtime) AttachedThreads() int { return r.registry.Attached() }
