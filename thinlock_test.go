package thinlock

import (
	"sync"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	rt := New()
	main, err := rt.AttachThread("main")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DetachThread(main)
	o := rt.NewObject("Account")

	ran := false
	rt.Synchronized(main, o, func() { ran = true })
	if !ran {
		t.Fatal("synchronized block never ran")
	}
	if rt.Inflated(o) {
		t.Error("uncontended object inflated")
	}
	if rt.Name() != "ThinLock" {
		t.Errorf("Name = %q", rt.Name())
	}
	if rt.Implementation() != ThinLock {
		t.Errorf("Implementation = %v", rt.Implementation())
	}
}

func TestAllImplementationsMutualExclusion(t *testing.T) {
	impls := []struct {
		name string
		opts []Option
	}{
		{"ThinLock", nil},
		{"JDK111", []Option{WithImplementation(JDK111)}},
		{"IBM112", []Option{WithImplementation(IBM112)}},
		{"ThinLock+deflation", []Option{WithDeflation()}},
	}
	for _, tc := range impls {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rt := New(tc.opts...)
			o := rt.NewObject("X")
			const goroutines, iters = 6, 300
			var counter int
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				done, err := rt.Go("w", func(th *Thread) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						rt.Synchronized(th, o, func() { counter++ })
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				_ = done
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestImplementationNames(t *testing.T) {
	if New(WithImplementation(JDK111)).Name() != "JDK111" {
		t.Error("JDK111 name")
	}
	if New(WithImplementation(IBM112)).Name() != "IBM112" {
		t.Error("IBM112 name")
	}
	if New(WithVariant(VariantNOP)).Name() != "ThinLock/NOP" {
		t.Error("variant name")
	}
	if ThinLock.String() != "ThinLock" || JDK111.String() != "JDK111" ||
		IBM112.String() != "IBM112" || Implementation(9).String() != "unknown-implementation" {
		t.Error("Implementation.String")
	}
}

func TestWaitNotifyAcrossRuntimeAPI(t *testing.T) {
	rt := New()
	o := rt.NewObject("Cond")
	ready := make(chan struct{})
	woke := make(chan bool, 1)
	done, err := rt.Go("waiter", func(th *Thread) {
		rt.Lock(th, o)
		close(ready)
		n, err := rt.Wait(th, o, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- n
		if err := rt.Unlock(th, o); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	notifier, err := rt.AttachThread("notifier")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rt.Lock(notifier, o)
		if err := rt.Notify(notifier, o); err != nil {
			t.Fatal(err)
		}
		if err := rt.Unlock(notifier, o); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-woke:
			if !n {
				t.Fatal("woke by timeout")
			}
			<-done
			return
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("never notified")
			}
		}
	}
}

func TestWaitTimeout(t *testing.T) {
	rt := New()
	th, _ := rt.AttachThread("t")
	o := rt.NewObject("X")
	rt.Lock(th, o)
	n, err := rt.Wait(th, o, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n {
		t.Fatal("notified on timeout")
	}
	if err := rt.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptWakesWait(t *testing.T) {
	rt := New()
	o := rt.NewObject("X")
	errCh := make(chan error, 1)
	var waiter *Thread
	started := make(chan struct{})
	done, err := rt.Go("w", func(th *Thread) {
		waiter = th
		rt.Lock(th, o)
		close(started)
		_, err := rt.Wait(th, o, 0)
		errCh <- err
		_ = rt.Unlock(th, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	time.Sleep(20 * time.Millisecond)
	waiter.Interrupt()
	select {
	case err := <-errCh:
		if err != ErrInterrupted {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interrupt lost")
	}
	<-done
}

func TestIllegalMonitorState(t *testing.T) {
	rt := New()
	th, _ := rt.AttachThread("t")
	o := rt.NewObject("X")
	if err := rt.Unlock(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("err = %v", err)
	}
	if _, err := rt.Wait(th, o, 0); err != ErrIllegalMonitorState {
		t.Fatalf("wait err = %v", err)
	}
	if err := rt.Notify(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("notify err = %v", err)
	}
	if err := rt.NotifyAll(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("notifyAll err = %v", err)
	}
}

func TestStatsIntegration(t *testing.T) {
	rt := New(WithStats())
	th, _ := rt.AttachThread("t")
	o := rt.NewObject("X")
	rt.Synchronized(th, o, func() {})
	rt.Synchronized(th, o, func() {})
	rep, err := rt.LockStats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSyncs != 2 {
		t.Errorf("TotalSyncs = %d, want 2", rep.TotalSyncs)
	}
	if rep.SyncedObjects != 1 {
		t.Errorf("SyncedObjects = %d, want 1", rep.SyncedObjects)
	}
	if rt.ObjectsAllocated() != 1 {
		t.Errorf("ObjectsAllocated = %d, want 1", rt.ObjectsAllocated())
	}
}

func TestStatsUnavailableWithoutOption(t *testing.T) {
	rt := New()
	if _, err := rt.LockStats(); err == nil {
		t.Fatal("LockStats without WithStats must error")
	}
}

func TestThinLockStatsInflation(t *testing.T) {
	rt := New()
	o := rt.NewObject("X")
	a, _ := rt.AttachThread("a")

	rt.Lock(a, o)
	var wg sync.WaitGroup
	wg.Add(1)
	if _, err := rt.Go("b", func(th *Thread) {
		defer wg.Done()
		rt.Synchronized(th, o, func() {})
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.ThinLockStats().SpinRounds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("contender never spun")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !rt.Inflated(o) {
		t.Fatal("contention did not inflate")
	}
	if rt.ThinLockStats().Inflations() != 1 {
		t.Errorf("Inflations = %d, want 1", rt.ThinLockStats().Inflations())
	}
}

func TestBaselineStatsAreZero(t *testing.T) {
	rt := New(WithImplementation(JDK111))
	th, _ := rt.AttachThread("t")
	o := rt.NewObject("X")
	rt.Synchronized(th, o, func() {})
	if rt.Inflated(o) {
		t.Error("baseline reports inflation")
	}
	if s := rt.ThinLockStats(); s.Inflations() != 0 || s.FatLocks != 0 {
		t.Error("baseline thin stats nonzero")
	}
}

func TestConfigKnobs(t *testing.T) {
	rt := New(WithImplementation(JDK111), WithMonitorCacheCapacity(4))
	th, _ := rt.AttachThread("t")
	for i := 0; i < 20; i++ {
		o := rt.NewObject("X")
		rt.Synchronized(th, o, func() {})
	}
	rt2 := New(WithImplementation(IBM112), WithHotLockSlots(2))
	th2, _ := rt2.AttachThread("t")
	for i := 0; i < 20; i++ {
		o := rt2.NewObject("X")
		for j := 0; j < 10; j++ {
			rt2.Synchronized(th2, o, func() {})
		}
	}
}

func TestQueuedInflationOption(t *testing.T) {
	rt := New(WithQueuedInflation())
	o := rt.NewObject("X")
	a, _ := rt.AttachThread("a")

	rt.Lock(a, o)
	done := make(chan struct{})
	if _, err := rt.Go("b", func(th *Thread) {
		rt.Synchronized(th, o, func() {})
		close(done)
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.ThinLockStats().QueuedParks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("contender never parked on the contention queue")
		}
		time.Sleep(time.Millisecond)
	}
	if rt.ThinLockStats().SpinRounds != 0 {
		t.Error("queued mode spun")
	}
	if err := rt.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	<-done
	if !rt.Inflated(o) {
		t.Error("queued contention did not inflate")
	}
}

func TestCountBitsOption(t *testing.T) {
	rt := New(WithCountBits(2))
	th, _ := rt.AttachThread("t")
	o := rt.NewObject("X")
	for i := 0; i < 4; i++ {
		rt.Lock(th, o)
	}
	if rt.Inflated(o) {
		t.Fatal("inflated within the 2-bit nesting budget")
	}
	rt.Lock(th, o) // 5th: overflow
	if !rt.Inflated(o) {
		t.Fatal("5th nested lock did not inflate with CountBits=2")
	}
	if rt.ThinLockStats().InflationsOverflow != 1 {
		t.Error("overflow inflation not counted")
	}
	for i := 0; i < 5; i++ {
		if err := rt.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTraceOption(t *testing.T) {
	rt := New(WithTrace(0))
	th, _ := rt.AttachThread("t")
	a := rt.NewObject("A")
	b := rt.NewObject("B")

	// Create a lock-order inversion sequentially.
	rt.Lock(th, a)
	rt.Lock(th, b)
	_ = rt.Unlock(th, b)
	_ = rt.Unlock(th, a)
	rt.Lock(th, b)
	rt.Lock(th, a)
	_ = rt.Unlock(th, a)
	_ = rt.Unlock(th, b)

	evs, err := rt.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 8 {
		t.Fatalf("events = %d, want 8", len(evs))
	}
	rep, err := rt.TraceReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1:\n%s", len(rep.Cycles), rep)
	}
	if !rep.HasHazards() {
		t.Fatal("inversion not reported")
	}
}

func TestTraceUnavailableWithoutOption(t *testing.T) {
	rt := New()
	if _, err := rt.TraceEvents(); err == nil {
		t.Fatal("TraceEvents without WithTrace must error")
	}
	if _, err := rt.TraceReport(); err == nil {
		t.Fatal("TraceReport without WithTrace must error")
	}
}

func TestThreadAndObjectAccessors(t *testing.T) {
	rt := New()
	th, _ := rt.AttachThread("worker")
	o := rt.NewObject("Vector")
	if th.Name() != "worker" || th.Index() == 0 {
		t.Error("thread accessors")
	}
	if o.Class() != "Vector" || o.ID() == 0 {
		t.Error("object accessors")
	}
	if o.String() != "Vector#1" {
		t.Errorf("object String = %q", o.String())
	}
	if th.String() == "" {
		t.Error("thread String empty")
	}
	rt.Lock(th, o)
	if o.Header() == 0 {
		t.Error("header invisible")
	}
	if err := rt.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if rt.AttachedThreads() != 1 {
		t.Errorf("AttachedThreads = %d, want 1", rt.AttachedThreads())
	}
	rt.DetachThread(th)
	if rt.AttachedThreads() != 0 {
		t.Errorf("AttachedThreads = %d, want 0", rt.AttachedThreads())
	}
}
