package thinlock_test

import (
	"fmt"
	"time"

	"thinlock"
)

// The basic lifecycle: attach a thread, lock, nest, unlock.
func Example() {
	rt := thinlock.New()
	main, _ := rt.AttachThread("main")
	defer rt.DetachThread(main)

	account := rt.NewObject("Account")
	rt.Lock(main, account)
	rt.Lock(main, account) // nested: a plain store, no atomic
	fmt.Println("inflated while nested:", rt.Inflated(account))
	_ = rt.Unlock(main, account)
	_ = rt.Unlock(main, account)

	// Output:
	// inflated while nested: false
}

// Synchronized is the Java synchronized-block idiom.
func ExampleRuntime_Synchronized() {
	rt := thinlock.New()
	main, _ := rt.AttachThread("main")
	counter := rt.NewObject("Counter")

	total := 0
	for i := 0; i < 3; i++ {
		rt.Synchronized(main, counter, func() { total++ })
	}
	fmt.Println("total:", total)

	// Output:
	// total: 3
}

// Wait and Notify implement condition synchronization; the first Wait
// inflates the thin lock because waiting needs queues.
func ExampleRuntime_Wait() {
	rt := thinlock.New()
	cond := rt.NewObject("Cond")

	ready := make(chan struct{})
	done, _ := rt.Go("waiter", func(t *thinlock.Thread) {
		rt.Lock(t, cond)
		close(ready)
		notified, _ := rt.Wait(t, cond, 0)
		fmt.Println("notified:", notified)
		_ = rt.Unlock(t, cond)
	})

	<-ready
	main, _ := rt.AttachThread("main")
	for {
		rt.Lock(main, cond)
		_ = rt.Notify(main, cond)
		_ = rt.Unlock(main, cond)
		select {
		case <-done:
			fmt.Println("inflated by wait:", rt.Inflated(cond))
			return
		case <-time.After(time.Millisecond):
		}
	}

	// Output:
	// notified: true
	// inflated by wait: true
}

// Baseline implementations are selected at construction.
func ExampleWithImplementation() {
	for _, impl := range []thinlock.Implementation{
		thinlock.ThinLock, thinlock.JDK111, thinlock.IBM112,
	} {
		rt := thinlock.New(thinlock.WithImplementation(impl))
		fmt.Println(rt.Name())
	}

	// Output:
	// ThinLock
	// JDK111
	// IBM112
}

// WithStats records the Figure 3 characterization data.
func ExampleWithStats() {
	rt := thinlock.New(thinlock.WithStats())
	main, _ := rt.AttachThread("main")
	obj := rt.NewObject("X")

	rt.Lock(main, obj)
	rt.Lock(main, obj) // one nested acquisition
	_ = rt.Unlock(main, obj)
	_ = rt.Unlock(main, obj)

	rep, _ := rt.LockStats()
	fmt.Printf("total=%d first=%d second=%d\n",
		rep.TotalSyncs, rep.ByDepth[0], rep.ByDepth[1])

	// Output:
	// total=2 first=1 second=1
}
