module thinlock

go 1.22
